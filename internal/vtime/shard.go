package vtime

// Sharded multi-core execution. A Group owns N region shards, each a full
// Scheduler — its own 4-ary timer heap, virtual clock, tie-break counter
// and (seed,index)-derived RNG streams — and runs them on worker
// goroutines under conservative-lookahead synchronization:
//
//   - Every inter-shard link declares a lookahead L > 0: the sender
//     promises that anything it sends over that link carries a timestamp
//     at least L past its own virtual clock (for a network link, L is the
//     link latency — a frame entering the wire now cannot pop out at the
//     far end sooner).
//   - Each shard publishes a monotone horizon: a lower bound on the
//     timestamp of anything it will ever execute (and therefore send)
//     from now on.
//   - A shard may execute events strictly earlier than
//     min over upstream links (horizon(src) + L(src→dst)); up to that
//     bound no in-flight or future message can precede them.
//
// Cross-shard events travel through bounded SPSC rings (one per declared
// link, pre-sized, no allocation on the steady-state path) with a
// mutex-guarded overflow inbox as the slow path; entries carry the
// intrinsic (at, origin, seq) key assigned by the sender, so once drained
// into the destination heap they order exactly the same way regardless of
// worker count or drain timing. Combined with the strict execution bound
// — which guarantees every event that must precede the bound has already
// been drained — each shard's execution sequence is a pure function of
// the seed and topology: one worker or sixteen, the run is byte-identical.
//
// Memory ordering: a sender pushes into the ring (release via the ring's
// tail store) before publishing a higher horizon (release store), and a
// receiver loads horizons (acquire) before draining rings, so any entry
// older than an observed horizon is visible by the time the bound derived
// from that horizon permits execution past it.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mob4x4/internal/assert"
)

// shardSeedStep spaces per-shard scheduler seeds. Distinct from the
// golden-ratio constant NewStream uses so shard-scheduler RNGs and minted
// entity streams can never collide.
const shardSeedStep = 0x7F4A7C15BF58476D

// ringCap is the SPSC ring capacity per declared link (power of two).
// Sized for the frame rate of one busy uplink between two horizon scans;
// overflow falls back to the mutex inbox rather than blocking, so the cap
// bounds memory, not correctness.
const ringCap = 256

// xevent is a cross-shard event in flight: the intrinsic key plus the
// handle-free callback form (cross-shard senders use package-level
// functions with pooled args, same as the AtArg fast path).
type xevent struct {
	at     Time
	seq    uint64
	origin int32
	afn    func(any)
	arg    any
}

// ring is a bounded single-producer single-consumer queue. The producer
// is the sending shard's worker, the consumer the receiving shard's
// worker; head/tail are indices into an always-power-of-two buffer.
type ring struct {
	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to push (producer-owned)
	buf  [ringCap]xevent
}

// push appends e; it reports false when the ring is full (the caller
// falls back to the overflow inbox — never blocks, so a stalled consumer
// cannot deadlock its producers).
func (r *ring) push(e xevent) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringCap {
		return false
	}
	r.buf[t%ringCap] = e
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest entry; ok is false when the ring is empty.
func (r *ring) pop() (xevent, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return xevent{}, false
	}
	e := r.buf[h%ringCap]
	r.buf[h%ringCap] = xevent{} // drop refs before the slot is reused
	r.head.Store(h + 1)
	return e, true
}

// pending reports the queued entry count (approximate under concurrency;
// exact when the group is quiescent, which is when Pending/NextAt run).
func (r *ring) pending() uint64 { return r.tail.Load() - r.head.Load() }

// upLink is one declared incoming edge of a shard.
type upLink struct {
	src       *Scheduler
	lookahead Time
	ring      *ring
}

// shardState is the per-shard synchronization block hanging off a
// Scheduler that belongs to a Group.
type shardState struct {
	group *Group
	id    int32

	// horizon is the published lower bound (as int64 nanoseconds of Time)
	// on the timestamp of anything this shard will execute — and hence
	// send — from now on. Monotone within a run.
	horizon atomic.Int64

	// upstream lists declared incoming links (with their rings) in
	// declaration order.
	upstream []upLink
	// out maps destination shard id → the outgoing ring for the declared
	// link, nil when only the default lookahead connects the pair.
	out []*ring // indexed by destination shard id
	// minIn is the smallest incoming lookahead (declared links and, when
	// set, the group default), used for the dense horizon scan.
	minIn Time

	// inbox is the overflow / undeclared-pair path: mutex-guarded MPSC
	// slice, drained by swapping with spare.
	inboxMu sync.Mutex
	inbox   []xevent
	spare   []xevent
}

// Group is a set of region shards executing one simulation under
// conservative-lookahead synchronization.
type Group struct {
	shards []*Scheduler

	// defaultLookahead > 0 permits sends between any shard pair (with at
	// least that much timestamp slack) and switches the safe bound to the
	// dense form min over all other shards (horizon + minIn).
	defaultLookahead Time

	mu      sync.Mutex
	cond    *sync.Cond
	version uint64 // bumped on every horizon publication
	parked  int
	anyLink bool
}

// NewGroup builds n region shards. Shard i's scheduler is seeded
// deterministically from (seed, i) so every shard owns independent —
// but reproducible — RNG streams.
func NewGroup(seed int64, n int) *Group {
	if n < 1 {
		n = 1
	}
	g := &Group{shards: make([]*Scheduler, n)}
	g.cond = sync.NewCond(&g.mu)
	for i := 0; i < n; i++ {
		s := NewScheduler(seed + int64(i)*shardSeedStep)
		s.origin = int32(i)
		s.sh = &shardState{
			group: g,
			id:    int32(i),
			out:   make([]*ring, n),
			minIn: maxTime,
		}
		g.shards[i] = s
	}
	return g
}

// maxTime is the far-future sentinel bound.
const maxTime = Time(1<<63 - 1)

// Shards returns the shard count.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns shard i's scheduler.
func (g *Group) Shard(i int) *Scheduler { return g.shards[i] }

// ShardID returns the scheduler's shard index within its group (0 for a
// standalone scheduler).
func (s *Scheduler) ShardID() int { return int(s.origin) }

// Group returns the group the scheduler belongs to, nil for a standalone
// scheduler.
func (s *Scheduler) Group() *Group {
	if s.sh == nil {
		return nil
	}
	return s.sh.group
}

// Link declares a directed src→dst edge with the given lookahead: every
// SendTo over the pair must carry a timestamp at least lookahead past the
// sender's clock. A zero or negative lookahead is rejected — with no
// timestamp slack the receiver could never safely execute anything, so
// such a link would deadlock the pair (model zero-latency coupling by
// putting both endpoints in one shard instead). Declaring a link
// allocates the pair's SPSC ring; pairs without a declared link may still
// communicate through the overflow inbox when SetDefaultLookahead is set.
func (g *Group) Link(src, dst int, lookahead Duration) error {
	if src < 0 || src >= len(g.shards) || dst < 0 || dst >= len(g.shards) {
		return fmt.Errorf("vtime: Link(%d, %d): shard index out of range [0, %d)", src, dst, len(g.shards))
	}
	if src == dst {
		return fmt.Errorf("vtime: Link(%d, %d): a shard needs no link to itself", src, dst)
	}
	if lookahead <= 0 {
		return fmt.Errorf("vtime: Link(%d, %d): lookahead %v must be positive — a zero-latency "+
			"inter-shard link admits no safe execution window (merge the regions into one shard instead)",
			src, dst, lookahead)
	}
	ss, ds := g.shards[src].sh, g.shards[dst].sh
	if ss.out[dst] != nil {
		return fmt.Errorf("vtime: Link(%d, %d): link already declared", src, dst)
	}
	r := new(ring)
	ss.out[dst] = r
	ds.upstream = append(ds.upstream, upLink{src: g.shards[src], lookahead: Time(lookahead), ring: r})
	if Time(lookahead) < ds.minIn {
		ds.minIn = Time(lookahead)
	}
	g.anyLink = true
	return nil
}

// EnsureLink declares the src→dst edge if absent, or tightens the
// declared lookahead when the new constraint is smaller. Two split
// segments laid over the same shard pair each promise their own link
// latency; the pair's safe window must be the minimum of them, and
// callers should not have to know whether some earlier segment already
// declared the edge. Validation mirrors Link's.
func (g *Group) EnsureLink(src, dst int, lookahead Duration) error {
	if src < 0 || src >= len(g.shards) || dst < 0 || dst >= len(g.shards) {
		return fmt.Errorf("vtime: EnsureLink(%d, %d): shard index out of range [0, %d)", src, dst, len(g.shards))
	}
	if src == dst {
		return fmt.Errorf("vtime: EnsureLink(%d, %d): a shard needs no link to itself", src, dst)
	}
	if lookahead <= 0 {
		return fmt.Errorf("vtime: EnsureLink(%d, %d): lookahead %v must be positive — a zero-latency "+
			"inter-shard link admits no safe execution window (merge the regions into one shard instead)",
			src, dst, lookahead)
	}
	ss, ds := g.shards[src].sh, g.shards[dst].sh
	if ss.out[dst] == nil {
		return g.Link(src, dst, lookahead)
	}
	for i := range ds.upstream {
		if ds.upstream[i].src == g.shards[src] {
			if Time(lookahead) < ds.upstream[i].lookahead {
				ds.upstream[i].lookahead = Time(lookahead)
				if Time(lookahead) < ds.minIn {
					ds.minIn = Time(lookahead)
				}
			}
			return nil
		}
	}
	assert.Unreachable("vtime: link ring exists without upstream record")
	return nil
}

// SetDefaultLookahead sets the group-wide floor lookahead: any shard may
// send to any other with at least d of timestamp slack (fleet uses this
// for node-migration hops, whose transit delay is a topology constant).
// It must be no larger than any declared link's lookahead — the safe
// bound uses the smallest incoming slack per shard.
func (g *Group) SetDefaultLookahead(d Duration) error {
	if d <= 0 {
		return fmt.Errorf("vtime: SetDefaultLookahead(%v): lookahead must be positive", d)
	}
	g.defaultLookahead = Time(d)
	for _, s := range g.shards {
		if Time(d) < s.sh.minIn {
			s.sh.minIn = Time(d)
		}
	}
	return nil
}

// SendTo schedules fn(arg) at instant t on dst, from another shard of the
// same group. It must be called from an event executing on s (or from the
// build/measure phases, when no workers run), and t must respect the
// pair's lookahead: the conservative synchronizer's safety rests on that
// slack. The declared link's ring carries the event without allocating;
// the overflow inbox (ring full, or pair covered only by the default
// lookahead) may grow a slice.
func (s *Scheduler) SendTo(dst *Scheduler, t Time, fn func(any), arg any) {
	if s.sh == nil || dst.sh == nil || s.sh.group != dst.sh.group {
		assert.Unreachable("vtime: SendTo across schedulers that do not share a group")
	}
	if fn == nil {
		assert.Unreachable("vtime: nil event function")
	}
	g := s.sh.group
	var la Time
	if r := s.sh.out[dst.sh.id]; r != nil {
		la = dst.lookaheadFrom(s)
		if g.defaultLookahead > 0 && g.defaultLookahead < la {
			// With a group default set, the receiver's safe bound only
			// assumes the default's slack from any sender (the dense scan
			// uses its minimum incoming lookahead), so a send with default
			// slack over a longer declared link is still conservative —
			// fleet migrations ride this between link-connected regions.
			la = g.defaultLookahead
		}
		s.checkSlack(dst, t, la)
		s.seq++
		e := xevent{at: t, seq: s.seq, origin: s.origin, afn: fn, arg: arg}
		if r.push(e) {
			return
		}
		dst.sh.pushInbox(e)
		return
	}
	la = g.defaultLookahead
	if la == 0 {
		assert.Unreachable("vtime: SendTo between shards %d and %d with no link and no default lookahead",
			s.origin, dst.origin)
	}
	s.checkSlack(dst, t, la)
	s.seq++
	dst.sh.pushInbox(xevent{at: t, seq: s.seq, origin: s.origin, afn: fn, arg: arg})
}

// lookaheadFrom returns the declared lookahead of the src→dst link.
func (dst *Scheduler) lookaheadFrom(src *Scheduler) Time {
	for i := range dst.sh.upstream {
		if dst.sh.upstream[i].src == src {
			return dst.sh.upstream[i].lookahead
		}
	}
	assert.Unreachable("vtime: link ring exists without upstream record")
	return 0
}

// checkSlack enforces the sender's lookahead promise.
func (s *Scheduler) checkSlack(dst *Scheduler, t Time, la Time) {
	if t < s.now.Add(Duration(la)) {
		assert.Unreachable("vtime: SendTo %d→%d at %v violates lookahead %v from now %v",
			s.origin, dst.origin, t, Duration(la), s.now)
	}
}

// pushInbox appends to the overflow inbox under its mutex.
func (sh *shardState) pushInbox(e xevent) {
	sh.inboxMu.Lock()
	sh.inbox = append(sh.inbox, e)
	sh.inboxMu.Unlock()
}

// drainInbox moves every queued cross-shard event into the local heap.
// Must run on the shard's owning worker, after the horizons used for the
// current safe bound were loaded (see the memory-ordering note atop the
// file).
func (s *Scheduler) drainInbox() {
	sh := s.sh
	for i := range sh.upstream {
		r := sh.upstream[i].ring
		for {
			e, ok := r.pop()
			if !ok {
				break
			}
			s.push(event{at: e.at, seq: e.seq, origin: e.origin, afn: e.afn, arg: e.arg})
		}
	}
	sh.inboxMu.Lock()
	pend := sh.inbox
	sh.inbox = sh.spare[:0]
	sh.inboxMu.Unlock()
	for i := range pend {
		e := &pend[i]
		s.push(event{at: e.at, seq: e.seq, origin: e.origin, afn: e.afn, arg: e.arg})
		*e = xevent{}
	}
	sh.spare = pend[:0]
}

// safeBound returns the exclusive bound below which this shard may
// execute: min over upstream horizons plus the link lookahead, capped at
// limit. With a default lookahead set the scan is dense (any shard may
// send here); otherwise only declared links constrain, and a shard with
// no upstream links runs free to the cap.
func (s *Scheduler) safeBound(limit Time) Time {
	sh := s.sh
	bound := limit
	if sh.group.defaultLookahead > 0 {
		for _, o := range sh.group.shards {
			if o == s {
				continue
			}
			if b := Time(o.sh.horizon.Load()) + sh.minIn; b < bound {
				bound = b
			}
		}
		return bound
	}
	for i := range sh.upstream {
		up := &sh.upstream[i]
		if b := Time(up.src.sh.horizon.Load()) + up.lookahead; b < bound {
			bound = b
		}
	}
	return bound
}

// publish raises the shard's horizon to h and wakes anyone whose safe
// bound may have grown. Publication happens per exhausted batch, not per
// event, so the lock here is off the hot path.
func (s *Scheduler) publish(h Time) {
	if int64(h) <= s.sh.horizon.Load() {
		return
	}
	s.sh.horizon.Store(int64(h))
	g := s.sh.group
	g.mu.Lock()
	g.version++
	if g.parked > 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// scan runs one safe batch for the shard: load horizons, drain the
// inboxes, execute everything strictly below the safe bound, publish the
// new horizon. It reports whether any event executed. untilX is the
// exclusive run bound (deadline+1, matching RunUntil's inclusive
// semantics).
func (s *Scheduler) scan(untilX Time) bool {
	bound := s.safeBound(untilX)
	s.drainInbox()
	ran := false
	for len(s.events) > 0 && s.events[0].at < bound {
		s.step()
		ran = true
	}
	// After the loop every local event is at ≥ bound and every future
	// arrival is too (it left a sender whose horizon already supports
	// bound), so bound is a sound horizon to promise.
	s.publish(bound)
	return ran
}

// worker services the shards owned by index w (round-robin) until all of
// them reach untilX.
func (g *Group) worker(w, workers int, untilX Time) {
	var owned []*Scheduler
	for i := w; i < len(g.shards); i += workers {
		owned = append(owned, g.shards[i])
	}
	for {
		g.mu.Lock()
		ver := g.version
		g.mu.Unlock()
		progress := false
		done := true
		for _, s := range owned {
			if Time(s.sh.horizon.Load()) >= untilX {
				continue
			}
			if s.scan(untilX) {
				progress = true
			}
			if Time(s.sh.horizon.Load()) < untilX {
				done = false
			}
		}
		if done {
			return
		}
		if progress {
			continue
		}
		// Nothing executable with the horizons we saw. Park until some
		// shard publishes (version moves); re-check under the lock to
		// avoid sleeping through a publication that raced the scan.
		g.mu.Lock()
		for g.version == ver {
			g.parked++
			g.cond.Wait()
			g.parked--
		}
		g.mu.Unlock()
	}
}

// RunUntil executes every shard's events with timestamps <= deadline on
// up to workers goroutines, then advances all shard clocks to the
// deadline. Events beyond the deadline stay queued. The execution order
// within each shard — and therefore the entire observable run — is
// byte-identical for any workers value.
func (g *Group) RunUntil(deadline Time, workers int) Time {
	untilX := deadline + 1
	if workers < 1 {
		workers = 1
	}
	if workers > len(g.shards) {
		workers = len(g.shards)
	}
	for _, s := range g.shards {
		s.sh.horizon.Store(int64(s.now))
	}
	if workers == 1 {
		// Single worker: same algorithm, no goroutines to park.
		g.runSerial(untilX)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				g.worker(w, workers, untilX)
			}(w)
		}
		wg.Wait()
	}
	for _, s := range g.shards {
		if s.now < deadline {
			s.now = deadline
		}
	}
	return deadline
}

// runSerial is the workers==1 loop: one goroutine round-robins every
// shard. The per-shard execution order is identical to the parallel
// path's because scan's bound logic is the same; only the interleaving of
// *different* shards' batches changes, and shards share no state.
func (g *Group) runSerial(untilX Time) {
	for {
		progress := false
		done := true
		for _, s := range g.shards {
			if Time(s.sh.horizon.Load()) >= untilX {
				continue
			}
			if s.scan(untilX) {
				progress = true
			}
			if Time(s.sh.horizon.Load()) < untilX {
				done = false
			}
		}
		if done {
			return
		}
		if !progress {
			// With one worker a no-progress pass can only mean horizons
			// still ratcheting toward untilX (empty shards bounding each
			// other); the next pass continues from the new horizons. A
			// full pass with no horizon movement at all would be a
			// deadlock — impossible with positive lookaheads, which the
			// constructor enforces.
			continue
		}
	}
}

// Run drains every shard: repeated bounded windows until no shard holds a
// queued event. It returns the latest shard clock.
func (g *Group) Run(workers int) Time {
	const window = Time(1e9) // 1s of virtual time per pass
	for {
		next, ok := g.NextAt()
		if !ok {
			return g.Now()
		}
		g.RunUntil(next+window, workers)
	}
}

// Pending sums queued events across shards, rings and inboxes. Callers
// must be quiescent (no workers running) — fleet's invariant checks run
// after the drain.
func (g *Group) Pending() int {
	n := 0
	for _, s := range g.shards {
		n += len(s.events)
		for i := range s.sh.upstream {
			n += int(s.sh.upstream[i].ring.pending())
		}
		s.sh.inboxMu.Lock()
		n += len(s.sh.inbox)
		s.sh.inboxMu.Unlock()
	}
	return n
}

// NextAt returns the earliest queued timestamp across shards, rings and
// inboxes; ok is false when the group is empty. Quiescent callers only.
func (g *Group) NextAt() (Time, bool) {
	best, ok := maxTime, false
	for _, s := range g.shards {
		if t, o := s.NextAt(); o && t < best {
			best, ok = t, true
		}
		for i := range s.sh.upstream {
			r := s.sh.upstream[i].ring
			for h := r.head.Load(); h != r.tail.Load(); h++ {
				if e := &r.buf[h%ringCap]; e.at < best {
					best, ok = e.at, true
				}
			}
		}
		s.sh.inboxMu.Lock()
		for i := range s.sh.inbox {
			if s.sh.inbox[i].at < best {
				best, ok = s.sh.inbox[i].at, true
			}
		}
		s.sh.inboxMu.Unlock()
	}
	return best, ok
}

// Now returns the latest shard clock.
func (g *Group) Now() Time {
	var t Time
	for _, s := range g.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Processed sums executed events across shards.
func (g *Group) Processed() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.Processed
	}
	return n
}
