package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	for _, d := range []Duration{5e9, 1e9, 3e9, 2e9, 4e9} {
		d := d
		s.After(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("ran %d events", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events out of order: %v", got)
	}
	if got[0] != Time(1e9) || got[4] != Time(5e9) {
		t.Errorf("timestamps wrong: %v", got)
	}
}

func TestTieBreakBySubmissionOrder(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(1e9), func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break broken: %v", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(1e9, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	// Stopping a fired timer.
	fired = false
	tm2 := s.After(1e9, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm2.Stop() {
		t.Error("Stop after firing returned true")
	}
	// Nil-safety.
	var nilT *Timer
	if nilT.Stop() {
		t.Error("nil timer Stop returned true")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := NewScheduler(1)
	var fired []int
	s.After(1e9, func() { fired = append(fired, 1) })
	s.After(3e9, func() { fired = append(fired, 3) })
	s.RunUntil(Time(2e9))
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v", fired)
	}
	if s.Now() != Time(2e9) {
		t.Errorf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Errorf("later event lost: %v", fired)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := NewScheduler(1)
	s.RunFor(5e9)
	if s.Now() != Time(5e9) {
		t.Fatalf("now = %v", s.Now())
	}
	s.RunFor(5e9)
	if s.Now() != Time(10e9) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler(1)
	var seq []string
	s.After(1e9, func() {
		seq = append(seq, "a")
		s.After(1e9, func() { seq = append(seq, "b") })
	})
	s.Run()
	if len(seq) != 2 || seq[1] != "b" || s.Now() != Time(2e9) {
		t.Errorf("seq=%v now=%v", seq, s.Now())
	}
}

func TestPostRunsAfterCurrentInstantQueue(t *testing.T) {
	s := NewScheduler(1)
	var seq []string
	s.At(Time(1e9), func() {
		s.Post(func() { seq = append(seq, "posted") })
		seq = append(seq, "first")
	})
	s.At(Time(1e9), func() { seq = append(seq, "second") })
	s.Run()
	want := []string{"first", "second", "posted"}
	for i := range want {
		if i >= len(seq) || seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.After(1e9, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(Time(0), func() {})
	})
	s.Run()
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*1e9, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop", count)
	}
	s.Run() // resume
	if count != 10 {
		t.Errorf("resume ran to %d", count)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(-5, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("negative delay event lost")
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewScheduler(99)
	b := NewScheduler(99)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed, different streams")
		}
	}
}

func TestExecutionOrderProperty(t *testing.T) {
	// Property: for any set of delays, callbacks observe a
	// non-decreasing clock and all run.
	f := func(delays []uint32) bool {
		s := NewScheduler(5)
		var times []Time
		for _, d := range delays {
			s.After(Duration(d%1e9), func() { times = append(times, s.Now()) })
		}
		s.Run()
		if len(times) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(1e9)
	if a.Add(5e8) != Time(15e8) {
		t.Error("Add")
	}
	if a.Add(5e8).Sub(a) != Duration(5e8) {
		t.Error("Sub")
	}
	if !a.Before(a.Add(1)) || a.Before(a) {
		t.Error("Before")
	}
	if !a.Add(1).After(a) || a.After(a) {
		t.Error("After")
	}
	if a.String() != "1s" {
		t.Errorf("String = %q", a.String())
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(Duration(rng.Intn(1000)), func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}
