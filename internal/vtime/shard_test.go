package vtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// twoShardPingPong builds a 2-shard group with symmetric links of the
// given lookahead and runs `rounds` of cross-shard ping-pong, returning
// the observed execution log (one line per event, tagged with shard and
// virtual instant). The log must be identical for any worker count.
func twoShardPingPong(workers, rounds int, lookahead Duration) string {
	g := NewGroup(1, 2)
	if err := g.Link(0, 1, lookahead); err != nil {
		panic(err)
	}
	if err := g.Link(1, 0, lookahead); err != nil {
		panic(err)
	}
	a, b := g.Shard(0), g.Shard(1)
	var mu sync.Mutex
	var log []string
	note := func(s *Scheduler, what any) {
		mu.Lock()
		log = append(log, fmt.Sprintf("shard%d %v %v", s.ShardID(), s.Now(), what))
		mu.Unlock()
	}
	var hop func(any)
	hop = func(arg any) {
		n := arg.(int)
		if n >= rounds {
			return
		}
		var src, dst *Scheduler
		if n%2 == 0 {
			src, dst = a, b
		} else {
			src, dst = b, a
		}
		note(src, n)
		src.SendTo(dst, src.Now().Add(lookahead), hop, n+1)
	}
	a.At(0, func() { hop(0) })
	// Independent local chatter on both shards so ties and interleaving
	// get exercised, not just the ping-pong chain.
	for i := 0; i < 8; i++ {
		i := i
		a.After(Duration(i)*lookahead/2, func() { note(a, fmt.Sprintf("la%d", i)) })
		b.After(Duration(i)*lookahead/2, func() { note(b, fmt.Sprintf("lb%d", i)) })
	}
	g.RunUntil(Time(Duration(rounds+16)*lookahead), workers)
	// Shard-local order is the determinism contract; the cross-shard
	// interleaving of the mu-serialized log is not. Canonicalize by
	// splitting per shard.
	var sa, sb []string
	for _, l := range log {
		if strings.HasPrefix(l, "shard0") {
			sa = append(sa, l)
		} else {
			sb = append(sb, l)
		}
	}
	return strings.Join(sa, "\n") + "\n---\n" + strings.Join(sb, "\n")
}

func TestShardedRunIsWorkerCountInvariant(t *testing.T) {
	want := twoShardPingPong(1, 40, 2e6)
	for _, workers := range []int{2, 3} {
		if got := twoShardPingPong(workers, 40, 2e6); got != want {
			t.Fatalf("workers=%d diverged from serial:\n%s\n-- want --\n%s", workers, got, want)
		}
	}
	if !strings.Contains(want, "shard1") || !strings.Contains(want, "la7") {
		t.Fatalf("log incomplete:\n%s", want)
	}
}

func TestZeroLatencyLinkRejected(t *testing.T) {
	g := NewGroup(1, 2)
	for _, d := range []Duration{0, -5e6} {
		err := g.Link(0, 1, d)
		if err == nil {
			t.Fatalf("Link with lookahead %v: want error, got nil", d)
		}
		if !strings.Contains(err.Error(), "lookahead") {
			t.Fatalf("Link error should name the lookahead, got: %v", err)
		}
	}
	if err := g.SetDefaultLookahead(0); err == nil {
		t.Fatal("SetDefaultLookahead(0): want error, got nil")
	}
	// Out-of-range / duplicate / self links are also configuration
	// errors, not panics.
	if err := g.Link(0, 5, 1e6); err == nil {
		t.Fatal("Link to out-of-range shard: want error")
	}
	if err := g.Link(0, 0, 1e6); err == nil {
		t.Fatal("self link: want error")
	}
	if err := g.Link(0, 1, 1e6); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := g.Link(0, 1, 1e6); err == nil {
		t.Fatal("duplicate link: want error")
	}
}

// TestEmptyShardDoesNotStallNeighbors pins the horizon-ratchet behavior:
// a shard with no events of its own (but an incoming link, so it *could*
// receive work) must keep publishing horizons so its downstream neighbor
// can run an arbitrarily long schedule to completion.
func TestEmptyShardDoesNotStallNeighbors(t *testing.T) {
	g := NewGroup(1, 3)
	// 0 → 1 → 2 → 0 ring of links: every shard is downstream of another,
	// so if an empty shard held its horizon back, the whole ring would
	// deadlock.
	for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.Link(l[0], l[1], 1e6); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 1 and 2 stay empty; shard 0 runs a long local-only schedule.
	s0 := g.Shard(0)
	ran := 0
	var tick func()
	tick = func() {
		ran++
		if ran < 1000 {
			s0.After(1e5, tick) // 0.1ms steps: far finer than the 1ms lookahead
		}
	}
	s0.After(0, tick)
	done := make(chan struct{})
	go func() {
		g.RunUntil(Time(2e9), 2)
		close(done)
	}()
	select {
	case <-done:
	case <-timeout(t):
		t.Fatal("empty neighbor shards stalled the run")
	}
	if ran != 1000 {
		t.Fatalf("ran %d of 1000 events", ran)
	}
	for i := 0; i < 3; i++ {
		if now := g.Shard(i).Now(); now != Time(2e9) {
			t.Fatalf("shard %d clock %v, want 2e9 (RunUntil advances every shard)", i, now)
		}
	}
}

// TestTimerResetAcrossLookaheadBoundary pins that Timer.Reset on a
// shard-local timer may re-arm past the current safe bound: local events
// are never constrained by *outgoing* lookahead, only execution is
// constrained by *incoming* horizons — and the rearmed timer still fires
// in correct global order relative to cross-shard traffic landing between
// the old and new deadlines.
func TestTimerResetAcrossLookaheadBoundary(t *testing.T) {
	const la = Duration(1e6)
	run := func(workers int) string {
		g := NewGroup(7, 2)
		if err := g.Link(0, 1, la); err != nil {
			t.Fatal(err)
		}
		if err := g.Link(1, 0, la); err != nil {
			t.Fatal(err)
		}
		a, b := g.Shard(0), g.Shard(1)
		var mu sync.Mutex
		var log []string
		note := func(s *Scheduler, what string) {
			mu.Lock()
			log = append(log, fmt.Sprintf("shard%d %v %s", s.ShardID(), s.Now(), what))
			mu.Unlock()
		}
		// Shard 1 arms a timer inside the first safe window, then resets
		// it far beyond the lookahead boundary. Shard 0 streams events to
		// shard 1 that land between the original and the reset deadline.
		var tm *Timer
		b.At(0, func() {
			tm = b.After(la/2, func() { note(b, "timer-fired") })
		})
		b.At(Time(la/4), func() {
			tm.Reset(10 * la) // re-arm across many lookahead windows
			note(b, "timer-reset")
		})
		for i := 1; i <= 8; i++ {
			i := i
			a.At(Time(Duration(i)*la), func() {
				a.SendTo(b, a.Now().Add(la), func(arg any) {
					note(b, fmt.Sprintf("arrival%d", arg.(int)))
				}, i)
			})
		}
		g.RunUntil(Time(20*la), workers)
		mu.Lock()
		defer mu.Unlock()
		var s1 []string
		for _, l := range log {
			if strings.HasPrefix(l, "shard1") {
				s1 = append(s1, l)
			}
		}
		return strings.Join(s1, "\n")
	}
	want := run(1)
	if got := run(2); got != want {
		t.Fatalf("reset-across-boundary order differs by worker count:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The reset must have moved the firing after every arrival that lands
	// before 10*la.
	iFired := strings.Index(want, "timer-fired")
	iLast := strings.Index(want, "arrival8")
	if iFired < 0 || iLast < 0 || iFired < iLast {
		t.Fatalf("timer did not fire after the arrivals it was reset past:\n%s", want)
	}
	if !strings.Contains(want, "timer-reset") {
		t.Fatalf("reset event missing:\n%s", want)
	}
}

// TestSendToDrain pins Group.Run: cross-shard events queued beyond the
// last RunUntil deadline drain to completion, and Pending reaches zero.
func TestSendToDrain(t *testing.T) {
	g := NewGroup(3, 2)
	if err := g.Link(0, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	a, b := g.Shard(0), g.Shard(1)
	got := 0
	a.At(0, func() {
		a.SendTo(b, Time(5e8), func(any) { got++ }, nil)
	})
	g.RunUntil(Time(1e6), 2) // deadline well before the cross-shard event
	if got != 0 {
		t.Fatal("event beyond the deadline ran early")
	}
	if g.Pending() == 0 {
		t.Fatal("pending cross-shard event not counted")
	}
	if at, ok := g.NextAt(); !ok || at != Time(5e8) {
		t.Fatalf("NextAt = %v, %v; want 5e8, true", at, ok)
	}
	g.Run(2)
	if got != 1 {
		t.Fatalf("drained %d events, want 1", got)
	}
	if g.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", g.Pending())
	}
}

// timeout returns a channel that fires after a generous real-time bound,
// for deadlock-sensitive assertions (package vtime is the one place the
// real clock is allowed).
func timeout(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(30 * time.Second)
}
