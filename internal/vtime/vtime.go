// Package vtime implements a deterministic discrete-event virtual-time
// scheduler. All simulated network activity in this repository is driven by
// a single Scheduler: links, retransmission timers, lease expiries and
// registration lifetimes all schedule callbacks at virtual instants, and the
// scheduler executes them in strict (time, sequence) order. Runs are fully
// reproducible: given the same seed and the same sequence of scheduled
// events, every experiment produces identical traces.
package vtime

import (
	"math/rand"
	"time"

	"mob4x4/internal/assert"
)

// Time is an instant in virtual time, measured as a duration since the start
// of the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return time.Duration(t).String() }

// An event is a callback scheduled at a virtual instant. Events are stored
// by value inside the scheduler's heap slice — no per-event allocation and
// no interface boxing. The (origin, seq) pair breaks timestamp ties so
// that events scheduled earlier run earlier, keeping the simulation
// deterministic. origin is the shard that scheduled the event (always 0
// for a standalone Scheduler) and seq is that shard's scheduling counter;
// both are intrinsic to the schedule — they never depend on how many
// worker goroutines a sharded run uses — so the execution order of every
// shard's queue is identical for any worker count. Exactly one of fn/afn
// is set; afn carries its argument in arg so that hot paths can schedule
// package-level functions without allocating a closure.
type event struct {
	at     Time
	seq    uint64
	origin int32
	fn     func()
	afn    func(any)
	arg    any
	timer  *Timer // backpointer kept in sync by the heap, nil for AtArg events
}

// Timer is a handle to a scheduled callback. Stopping a Timer that has
// already fired (or was already stopped) is a harmless no-op. The zero
// Timer is valid and behaves like an already-fired one.
type Timer struct {
	s  *Scheduler
	fn func() // retained so Reset can re-arm without a fresh closure
	// pos is the event's heap index + 1; 0 means not pending (fired,
	// stopped, or never scheduled). The heap updates it on every move,
	// which is what makes Stop a true O(log n) removal rather than a
	// mark-and-skip.
	pos int
}

// Pending reports whether the callback is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.pos > 0 }

// Stop cancels the timer, removing its event from the scheduler's queue.
// It reports whether the callback was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.pos == 0 {
		return false
	}
	t.s.removeAt(t.pos - 1)
	return true
}

// Reset re-arms the timer to run its callback d after the current instant,
// cancelling the pending run if there is one. It reuses the handle and the
// original callback, so re-arming allocates nothing — retransmission timers
// (tcplite) reset on every ACK without churning the heap allocator.
func (t *Timer) Reset(d Duration) {
	if t == nil || t.s == nil || t.fn == nil {
		assert.Unreachable("vtime: Reset on a timer that was never scheduled")
	}
	if d < 0 {
		d = 0
	}
	if t.pos > 0 {
		t.s.removeAt(t.pos - 1)
	}
	s := t.s
	s.seq++
	s.push(event{at: s.now.Add(d), seq: s.seq, origin: s.origin, fn: t.fn, timer: t})
}

// Scheduler is a discrete-event executor. It is not safe for concurrent use;
// one simulation is single-threaded by design (determinism beats parallelism
// within a run — the experiment harness parallelizes across independent
// Scheduler instances instead).
type Scheduler struct {
	now Time
	seq uint64
	// events is a 4-ary min-heap ordered by (at, origin, seq), stored by
	// value. 4-ary beats binary here: shallower sifts and better cache
	// behavior on the wide nodes, with no interface conversions anywhere.
	events  []event
	seed    int64
	rng     *rand.Rand
	streams int64
	stopped bool
	// origin is this scheduler's shard id within its Group (0 for a
	// standalone Scheduler); it tags every event the scheduler enqueues.
	origin int32
	// sh is the shard synchronization state; nil for a standalone
	// Scheduler, set by NewGroup.
	sh *shardState
	// Processed counts events executed since construction; useful as a
	// cheap progress/cost metric in benchmarks.
	Processed uint64
}

// NewScheduler returns a scheduler positioned at the epoch, with a
// deterministic random source derived from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual instant.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// NewStream derives an independent random stream from (seed, index),
// where index is the count of streams minted so far. Every entity that
// draws randomness owns one such stream for its lifetime: its draw
// sequence is then a pure function of the seed and construction order,
// never of how unrelated events interleave — the property the sharded
// engine needs to keep per-seed output byte-identical across shard
// layouts. Golden-ratio spacing keeps minted sources far apart from each
// other and from fleet's linear per-node derivation.
func (s *Scheduler) NewStream() *rand.Rand {
	s.streams++
	return rand.New(rand.NewSource(s.seed ^ int64(uint64(s.streams)*0x9E3779B97F4A7C15)))
}

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// panics: it is always a logic error in a discrete-event simulation.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		assert.Unreachable("vtime: scheduling event at %v before now %v", t, s.now)
	}
	if fn == nil {
		assert.Unreachable("vtime: nil event function")
	}
	tm := &Timer{s: s, fn: fn}
	s.seq++
	s.push(event{at: t, seq: s.seq, origin: s.origin, fn: fn, timer: tm})
	return tm
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Post schedules fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation's equivalent of
// "go fn()": useful to break deep synchronous call chains.
func (s *Scheduler) Post(fn func()) *Timer { return s.At(s.now, fn) }

// AtArg schedules fn(arg) at instant t without allocating a Timer handle.
// With a package-level fn and a pointer-typed arg the whole call is
// allocation-free, which is what the per-frame delivery path needs.
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) {
	if t < s.now {
		assert.Unreachable("vtime: scheduling event at %v before now %v", t, s.now)
	}
	if fn == nil {
		assert.Unreachable("vtime: nil event function")
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, origin: s.origin, afn: fn, arg: arg})
}

// AfterArg schedules fn(arg) to run d after the current instant; see AtArg.
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.AtArg(s.now.Add(d), fn, arg)
}

// Stop makes the currently executing Run return after the active callback
// finishes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual instant.
func (s *Scheduler) Run() Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d Duration) Time { return s.RunUntil(s.now.Add(d)) }

// Pending reports how many events are queued. Stopped timers are removed
// from the queue immediately, so they are never counted.
func (s *Scheduler) Pending() int { return len(s.events) }

// NextAt returns the timestamp of the earliest queued event. ok is false
// when the queue is empty. Quiescence checks use it to report *what* is
// still pending when a run fails to drain.
func (s *Scheduler) NextAt() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].at, true
}

func (s *Scheduler) step() {
	e := s.events[0]
	if e.timer != nil {
		e.timer.pos = 0
	}
	n := len(s.events) - 1
	s.events[0] = s.events[n]
	s.events[n] = event{}
	s.events = s.events[:n]
	if n > 1 {
		s.siftDown(0)
	} else if n == 1 {
		if t := s.events[0].timer; t != nil {
			t.pos = 1
		}
	}
	if e.at > s.now {
		s.now = e.at
	}
	s.Processed++
	if e.fn != nil {
		e.fn()
	} else {
		e.afn(e.arg)
	}
}

// less orders heap elements by (at, origin, seq). origin before seq:
// within one timestamp, ties first group by the scheduling shard and then
// by that shard's own counter, so the order is a pure function of the
// schedule itself (standalone schedulers have origin 0 everywhere, which
// reduces to the original (at, seq) order).
func (s *Scheduler) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e event) {
	s.events = append(s.events, e)
	s.siftUp(len(s.events) - 1)
}

// removeAt deletes the event at heap index i, fixing up the heap and any
// timer backpointers. Used by Timer.Stop/Reset for true removal (the old
// container/heap implementation marked events cancelled and skipped them at
// pop time, leaving dead entries — and their closures — queued).
func (s *Scheduler) removeAt(i int) {
	if t := s.events[i].timer; t != nil {
		t.pos = 0
	}
	n := len(s.events) - 1
	if i != n {
		s.events[i] = s.events[n]
	}
	s.events[n] = event{}
	s.events = s.events[:n]
	if i < n {
		s.siftDown(i)
		s.siftUp(i)
	}
}

func (s *Scheduler) siftUp(i int) {
	h := s.events
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		if t := h[i].timer; t != nil {
			t.pos = i + 1
		}
		i = p
	}
	h[i] = e
	if t := e.timer; t != nil {
		t.pos = i + 1
	}
}

func (s *Scheduler) siftDown(i int) {
	h := s.events
	n := len(h)
	e := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.less(&h[j], &h[best]) {
				best = j
			}
		}
		if !s.less(&h[best], &e) {
			break
		}
		h[i] = h[best]
		if t := h[i].timer; t != nil {
			t.pos = i + 1
		}
		i = best
	}
	h[i] = e
	if t := e.timer; t != nil {
		t.pos = i + 1
	}
}
