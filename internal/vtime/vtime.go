// Package vtime implements a deterministic discrete-event virtual-time
// scheduler. All simulated network activity in this repository is driven by
// a single Scheduler: links, retransmission timers, lease expiries and
// registration lifetimes all schedule callbacks at virtual instants, and the
// scheduler executes them in strict (time, sequence) order. Runs are fully
// reproducible: given the same seed and the same sequence of scheduled
// events, every experiment produces identical traces.
package vtime

import (
	"container/heap"
	"math/rand"
	"time"

	"mob4x4/internal/assert"
)

// Time is an instant in virtual time, measured as a duration since the start
// of the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return time.Duration(t).String() }

// An event is a callback scheduled at a virtual instant. The seq field
// breaks ties so that events scheduled earlier run earlier, keeping the
// simulation deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled callback. Cancelling a Timer that has
// already fired (or was already cancelled) is a harmless no-op.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the callback was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fn == nil {
		return false
	}
	t.ev.canceled = true
	return true
}

// Scheduler is a discrete-event executor. It is not safe for concurrent use;
// the simulation is single-threaded by design (determinism beats parallelism
// for a reproduction harness).
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	// Processed counts events executed since construction; useful as a
	// cheap progress/cost metric in benchmarks.
	Processed uint64
}

// NewScheduler returns a scheduler positioned at the epoch, with a
// deterministic random source derived from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual instant.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// panics: it is always a logic error in a discrete-event simulation.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		assert.Unreachable("vtime: scheduling event at %v before now %v", t, s.now)
	}
	if fn == nil {
		assert.Unreachable("vtime: nil event function")
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Post schedules fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation's equivalent of
// "go fn()": useful to break deep synchronous call chains.
func (s *Scheduler) Post(fn func()) *Timer { return s.At(s.now, fn) }

// Stop makes the currently executing Run return after the active callback
// finishes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual instant.
func (s *Scheduler) Run() Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) Time {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d Duration) Time { return s.RunUntil(s.now.Add(d)) }

// Pending reports how many events are queued (including cancelled ones not
// yet reaped).
func (s *Scheduler) Pending() int { return len(s.events) }

func (s *Scheduler) step() {
	ev := heap.Pop(&s.events).(*event)
	if ev.canceled {
		return
	}
	if ev.at > s.now {
		s.now = ev.at
	}
	fn := ev.fn
	ev.fn = nil
	s.Processed++
	fn()
}
