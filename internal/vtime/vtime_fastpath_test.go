package vtime

import (
	"testing"

	"mob4x4/internal/race"
)

// TestTimerReset pins the Reset semantics the tcplite retransmission timer
// depends on: re-arming a pending timer moves its single callback, and
// resetting a fired timer schedules it again — with no new Timer handle.
func TestTimerReset(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	tm := s.After(100, func() { fired = append(fired, s.Now()) })

	tm.Reset(250) // supersedes the pending 100ns run
	s.Run()
	if len(fired) != 1 || fired[0] != 250 {
		t.Fatalf("after Reset of pending timer, fired = %v, want [250]", fired)
	}
	if tm.Pending() {
		t.Fatal("timer still pending after firing")
	}

	tm.Reset(50) // re-arm after fire, reusing the same handle
	if !tm.Pending() {
		t.Fatal("timer not pending after Reset")
	}
	s.Run()
	if len(fired) != 2 || fired[1] != 300 {
		t.Fatalf("after second Reset, fired = %v, want [250 300]", fired)
	}
}

// TestTimerStopRemoves checks that Stop is a true removal: the event leaves
// the queue immediately instead of lingering as a cancelled entry.
func TestTimerStopRemoves(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(100, func() { t.Fatal("stopped timer fired") })
	s.After(200, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false for a pending timer")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d after Stop, want 1 (true removal)", s.Pending())
	}
	if tm.Pending() {
		t.Fatal("timer reports pending after Stop")
	}
	s.Run()
}

// TestAtArgOrdering checks the handle-free path interleaves with At in
// strict submission order at the same instant.
func TestAtArgOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.AtArg(10, func(a any) { got = append(got, a.(int)) }, 1)
	s.At(10, func() { got = append(got, 2) })
	s.AfterArg(10, func(a any) { got = append(got, a.(int)) }, 3)
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

// TestAtArgNoAlloc pins the zero-allocation contract of the handle-free
// scheduling path once the heap slice has warmed up.
func TestAtArgNoAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	s := NewScheduler(1)
	fn := func(any) {}
	arg := new(int)
	// Warm the heap slice so append growth is out of the picture.
	for i := 0; i < 64; i++ {
		s.AfterArg(1, fn, arg)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.AfterArg(1, fn, arg)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("AfterArg+Run allocates %v per op, want 0", allocs)
	}
}

// TestRemoveMiddleKeepsOrder stops a timer buried in the middle of a large
// heap and checks the remaining events still run in (time, seq) order.
func TestRemoveMiddleKeepsOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	var timers []*Timer
	for i := 100; i > 0; i-- {
		at := Time(i * 10)
		timers = append(timers, s.At(at, func() { got = append(got, at) }))
	}
	// Stop every third timer.
	stopped := map[Time]bool{}
	for i, tm := range timers {
		if i%3 == 1 {
			tm.Stop()
			stopped[Time((100-i)*10)] = true
		}
	}
	s.Run()
	var last Time = -1
	for _, at := range got {
		if stopped[at] {
			t.Fatalf("stopped timer at %v fired", at)
		}
		if at <= last {
			t.Fatalf("events out of order: %v after %v", at, last)
		}
		last = at
	}
	if want := 100 - len(stopped); len(got) != want {
		t.Fatalf("%d events ran, want %d", len(got), want)
	}
}
