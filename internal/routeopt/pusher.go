package routeopt

import (
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// PushStats counts one push engine's activity (shared by the MN-push
// Updater and the HA-push HAUpdater).
type PushStats struct {
	UpdatesSent  uint64
	Retransmits  uint64
	Acks         uint64
	Nacks        uint64
	Abandons     uint64
	PeersTracked uint64 // distinct peer slot installs (re-installs count)
}

// pushMetrics are the registry counters a push engine increments,
// resolved once by the owning wrapper (Updater / HAUpdater) and shared
// across its pushers.
type pushMetrics struct {
	sent        *metrics.Counter
	retransmits *metrics.Counter
	acks        *metrics.Counter
	nacks       *metrics.Counter
	abandons    *metrics.Counter
}

func resolvePushMetrics(reg *metrics.Registry) pushMetrics {
	return pushMetrics{
		sent:        reg.Counter("ro/updates_sent"),
		retransmits: reg.Counter("ro/update_retransmits"),
		acks:        reg.Counter("ro/update_acks"),
		nacks:       reg.Counter("ro/update_nacks"),
		abandons:    reg.Counter("ro/update_abandons"),
	}
}

// pushSlot is one tracked correspondent. Slots live in a fixed-size
// linear table: the peer set of one mobile host is small (the paper's
// conversations are few), a scan beats a map on the per-packet tracking
// path, and slot order is a pure function of traffic history, so the
// retransmission schedule is deterministic.
type pushSlot struct {
	peer       ipv4.Addr
	active     bool
	lastActive vtime.Time
	awaiting   bool
	awaitingID uint64
	tries      int
	timer      *vtime.Timer
}

// pusher is the per-home push engine: it tracks the correspondents a
// binding's traffic touches and, on handoff, sends each an
// authenticated binding update with bounded retransmission. One pusher
// serves one home address; the MN-push Updater owns exactly one, the
// HA-push HAUpdater one per provisioned home.
type pusher struct {
	host  *stack.Host
	sock  *stack.UDPSocket
	home  ipv4.Addr
	auth  *mobileip.Authenticator
	cfg   pushConfig
	m     *pushMetrics
	stats *PushStats

	// srcAddr yields the source address for outgoing updates at send
	// time (the MN's current care-of address moves under the pusher).
	srcAddr func() ipv4.Addr

	careOf ipv4.Addr // last pushed care-of address
	lastID uint64
	slots  []pushSlot
}

// pushConfig is the tuning shared by both wrappers.
type pushConfig struct {
	lifetime   uint16
	retry      vtime.Duration
	maxRetries int
	maxPeers   int
}

func (c *pushConfig) fillDefaults() {
	if c.lifetime == 0 {
		c.lifetime = 20
	}
	if c.retry == 0 {
		c.retry = vtime.Duration(500e6) // 500ms
	}
	if c.maxRetries == 0 {
		c.maxRetries = 3
	}
	if c.maxPeers == 0 {
		c.maxPeers = 8
	}
}

func newPusher(host *stack.Host, sock *stack.UDPSocket, home ipv4.Addr,
	auth *mobileip.Authenticator, cfg pushConfig, m *pushMetrics, stats *PushStats,
	srcAddr func() ipv4.Addr) *pusher {
	return &pusher{
		host: host, sock: sock, home: home, auth: auth, cfg: cfg,
		m: m, stats: stats, srcAddr: srcAddr,
		slots: make([]pushSlot, 0, cfg.maxPeers),
	}
}

// notePeer records traffic to peer, installing or refreshing its slot.
// This runs per outgoing packet: linear scan, no allocation.
func (p *pusher) notePeer(peer ipv4.Addr) {
	now := p.host.Sim().Now()
	for i := range p.slots {
		if p.slots[i].active && p.slots[i].peer == peer {
			p.slots[i].lastActive = now
			return
		}
	}
	// Not tracked: reuse an inactive slot, grow below capacity, or
	// evict the least-recently-active peer (ties break on the lowest
	// index — deterministic).
	victim := -1
	for i := range p.slots {
		if !p.slots[i].active {
			victim = i
			break
		}
	}
	if victim < 0 && len(p.slots) < cap(p.slots) {
		p.slots = append(p.slots, pushSlot{})
		victim = len(p.slots) - 1
	}
	if victim < 0 {
		for i := range p.slots {
			if victim < 0 || p.slots[i].lastActive < p.slots[victim].lastActive {
				victim = i
			}
		}
	}
	s := &p.slots[victim]
	s.timer.Stop()
	*s = pushSlot{peer: peer, active: true, lastActive: now, timer: s.timer}
	p.stats.PeersTracked++
}

// push tells every tracked correspondent the new care-of address.
func (p *pusher) push(careOf ipv4.Addr, lifetime uint16) {
	p.careOf = careOf
	for i := range p.slots {
		if !p.slots[i].active {
			continue
		}
		p.sendUpdate(i, lifetime, false)
	}
}

// nextID returns a fresh vtime-monotone identification (the same scheme
// as registration requests, so receiver-side replay windows order by
// it).
func (p *pusher) nextID() uint64 {
	id := uint64(p.host.Sim().Now())
	if id <= p.lastID {
		id = p.lastID + 1
	}
	p.lastID = id
	return id
}

// sendUpdate transmits one binding update to slot i and arms its
// retransmission timer. The wire image is built in a pooled buffer and
// signed with the association's preallocated HMAC state: zero
// allocations per send (pinned by TestUpdaterSendAllocs).
func (p *pusher) sendUpdate(i int, lifetime uint16, retransmit bool) {
	s := &p.slots[i]
	u := BindingUpdate{
		Lifetime: lifetime,
		Home:     p.home,
		CareOf:   p.careOf,
		ID:       p.nextID(),
	}
	buf := netsim.GetBuf()
	b := u.AppendMarshal(buf.B)
	if p.auth != nil {
		b = p.auth.AppendAuth(b)
	}
	_ = p.sock.SendToFrom(p.srcAddr(), s.peer, udp.PortBindingUpdate, b)
	netsim.PutBuf(buf)
	s.awaiting = true
	s.awaitingID = u.ID
	if retransmit {
		p.stats.Retransmits++
		p.m.retransmits.Inc()
	} else {
		s.tries = 0
	}
	p.stats.UpdatesSent++
	p.m.sent.Inc()
	p.armRetry(i)
}

// armRetry schedules slot i's retransmission. Timer handles are created
// once per slot and reused via Reset — the repo's timer idiom — with the
// retry closure binding the slot index.
func (p *pusher) armRetry(i int) {
	s := &p.slots[i]
	if s.timer == nil {
		s.timer = p.host.Sched().After(p.cfg.retry, func() { p.onRetry(i) })
	} else {
		s.timer.Reset(p.cfg.retry)
	}
}

// onRetry fires when slot i's update has gone unacked for one retry
// interval: retransmit, or — once the budget is spent — abandon. An
// abandoned correspondent is left to the fallback path: its cached
// binding (if any) expires on its TTL and traffic degrades to In-IE
// triangle routing, so no conversation is ever lost to a missing ack.
func (p *pusher) onRetry(i int) {
	s := &p.slots[i]
	if !s.awaiting || !s.active {
		return
	}
	s.tries++
	if s.tries >= p.cfg.maxRetries {
		s.awaiting = false
		p.stats.Abandons++
		p.m.abandons.Inc()
		p.host.Sim().Trace.Record(netsim.Event{
			Kind: netsim.EventNote, Time: p.host.Sim().Now(), Where: p.host.Name(),
			Detail: "binding update abandoned: retries exhausted",
		})
		return
	}
	p.sendUpdate(i, p.cfg.lifetime, true)
}

// handleAck processes one acknowledgement for this pusher's home. The
// caller has already parsed the datagram; payload is the full wire
// image for MAC verification.
func (p *pusher) handleAck(src ipv4.Addr, a BindingAck, hasAuth bool, payload []byte) {
	if p.auth != nil && (!hasAuth || !p.auth.Verify(payload)) {
		// Under an association every ack must authenticate: a forged
		// nack must not stop retransmission toward the real receiver.
		p.host.Sim().Metrics.Drop(metrics.DropAuthBadMAC)
		return
	}
	for i := range p.slots {
		s := &p.slots[i]
		if !s.active || s.peer != src || !s.awaiting || s.awaitingID != a.ID {
			continue
		}
		s.awaiting = false
		s.timer.Stop()
		if a.Code == AckAccepted {
			p.stats.Acks++
			p.m.acks.Inc()
		} else {
			// The receiver refused (no association, auth failure,
			// replay verdict): pushing again would only repeat the
			// refusal, so drop the peer from the push set. Its traffic
			// keeps flowing In-IE — the hard fallback.
			p.stats.Nacks++
			p.m.nacks.Inc()
			s.active = false
			p.host.Sim().Trace.Record(netsim.Event{
				Kind: netsim.EventNote, Time: p.host.Sim().Now(), Where: p.host.Name(),
				Detail: fmt.Sprintf("binding update refused by %s: code %d", src, a.Code),
			})
		}
		return
	}
}

// quiesce stops every slot timer and clears in-flight state (migration
// prep: a fresh push after arrival supersedes anything in flight).
func (p *pusher) quiesce() {
	for i := range p.slots {
		p.slots[i].timer.Stop()
		p.slots[i].awaiting = false
		p.slots[i].tries = 0
	}
}

// rehome drops the old region's timer handles; the next arm lazily
// recreates them on the new scheduler.
func (p *pusher) rehome() {
	for i := range p.slots {
		p.slots[i].timer = nil
	}
}

// activePeers counts currently tracked correspondents.
func (p *pusher) activePeers() int {
	n := 0
	for i := range p.slots {
		if p.slots[i].active {
			n++
		}
	}
	return n
}
