package routeopt_test

import (
	"testing"

	"mob4x4/internal/faults"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/routeopt"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
)

// metroWorld is the hierarchical-tier topology: one metro behind a
// gateway router, with the regional agent on its own LAN and two cell
// LANs the mobile host hands off between.
//
//	homeLAN(36.1.1.0/24) -- homeGW -- bb0 -- bb1 -- mgw -- gfaLAN(11.1.0.0/24)
//	                                   |              |--- cellA(128.9.1.0/24)
//	                                 farGW             `-- cellB(128.9.2.0/24)
//	                                   |
//	                                 farLAN(17.5.0.0/24)
//
// The home agent sees one stable care-of address (the regional agent's);
// intra-metro handoffs touch only the regional agent's table.
type metroWorld struct {
	net     *inet.Network
	homeLAN *inet.LAN
	gfaLAN  *inet.LAN
	cellA   *inet.LAN
	cellB   *inet.LAN
	farLAN  *inet.LAN

	haHost *stack.Host
	ha     *mobileip.HomeAgent

	gfaHost *stack.Host
	gfa     *routeopt.RegionalAgent

	mhHost *stack.Host
	mhIfc  *stack.Iface
	mn     *mobileip.MobileNode
	mhICMP *icmphost.ICMP
	lr     *routeopt.LocalRegistrar

	chFar  *stack.Host
	chICMP *icmphost.ICMP
}

type metroOpts struct {
	requireAuth bool   // regional agent refuses unprovisioned homes
	maxLifetime uint16 // regional lifetime cap
	lrAuth      *mobileip.Authenticator
}

func buildMetro(t testing.TB, opts metroOpts) *metroWorld {
	t.Helper()
	w := &metroWorld{net: inet.New(42)}
	n := w.net

	lat := netsim.SegmentOpts{Latency: 1 * ms}
	w.homeLAN = n.AddLAN("home", "36.1.1.0/24", lat)
	w.gfaLAN = n.AddLAN("gfa", "11.1.0.0/24", lat)
	w.cellA = n.AddLAN("cellA", "128.9.1.0/24", lat)
	w.cellB = n.AddLAN("cellB", "128.9.2.0/24", lat)
	w.farLAN = n.AddLAN("far", "17.5.0.0/24", lat)

	homeGW := n.AddRouter("homeGW")
	mgw := n.AddRouter("mgw")
	farGW := n.AddRouter("farGW")
	bb := n.Chain("bb", 2, 5*ms)
	n.AttachRouter(homeGW, w.homeLAN)
	n.AttachRouter(mgw, w.gfaLAN)
	n.AttachRouter(mgw, w.cellA)
	n.AttachRouter(mgw, w.cellB)
	n.AttachRouter(farGW, w.farLAN)
	n.Link(homeGW, bb[0], 5*ms)
	n.Link(mgw, bb[1], 5*ms)
	n.Link(farGW, bb[0], 5*ms)

	w.haHost = n.AddHost("ha", w.homeLAN)
	w.gfaHost = n.AddHost("gfa", w.gfaLAN)
	mh, mhIfc := n.AddMobileHost("mh", w.homeLAN)
	w.mhHost, w.mhIfc = mh, mhIfc
	w.chFar = n.AddHost("chFar", w.farLAN)
	n.ComputeRoutes()

	var err error
	w.ha, err = mobileip.NewHomeAgent(w.haHost, w.haHost.Ifaces()[0], mobileip.HomeAgentConfig{})
	if err != nil {
		t.Fatalf("NewHomeAgent: %v", err)
	}
	gfaAddr := w.gfaHost.FirstAddr()
	w.gfa, err = routeopt.NewRegionalAgent(w.gfaHost, gfaAddr, routeopt.RegionalAgentConfig{
		HomeAgent:   w.haHost.Ifaces()[0].Addr(),
		MaxLifetime: opts.maxLifetime,
		RequireAuth: opts.requireAuth,
	})
	if err != nil {
		t.Fatalf("NewRegionalAgent: %v", err)
	}

	w.mhICMP = icmphost.Install(w.mhHost)
	w.mn, err = mobileip.NewMobileNode(w.mhHost, w.mhIfc, mobileip.MobileNodeConfig{
		Home:           w.mhIfc.Addr(),
		HomePrefix:     w.homeLAN.Prefix,
		HomeAgent:      w.haHost.Ifaces()[0].Addr(),
		RegisterCareOf: gfaAddr,
		RegionalAgent:  gfaAddr,
	})
	if err != nil {
		t.Fatalf("NewMobileNode: %v", err)
	}
	w.lr, err = routeopt.NewLocalRegistrar(w.mn, routeopt.LocalRegistrarConfig{
		Regional: gfaAddr,
		Auth:     opts.lrAuth,
	})
	if err != nil {
		t.Fatalf("NewLocalRegistrar: %v", err)
	}

	w.chICMP = icmphost.Install(w.chFar)
	return w
}

// enterMetro moves the MH into cellA: one home registration (advertising
// the stable regional care-of address) plus one regional registration.
func (w *metroWorld) enterMetro(t testing.TB) ipv4.Addr {
	t.Helper()
	careOf := w.cellA.NextAddr()
	w.mn.MoveTo(w.cellA.Seg, careOf, w.cellA.Prefix, w.cellA.Gateway)
	w.lr.Register()
	w.net.RunFor(2e9)
	if !w.mn.Registered() {
		t.Fatal("home registration failed")
	}
	if got, ok := w.ha.CareOf(w.mn.Home()); !ok || got != w.gfa.Addr() {
		t.Fatalf("HA binding = %v,%v; want regional address %s", got, ok, w.gfa.Addr())
	}
	if got, ok := w.gfa.CareOf(w.mn.Home()); !ok || got != careOf {
		t.Fatalf("regional binding = %v,%v; want %s", got, ok, careOf)
	}
	return careOf
}

func (w *metroWorld) chPing(t testing.TB, seq uint16) int {
	t.Helper()
	replies := 0
	w.chICMP.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) {
		replies++
		if src != w.mn.Home() {
			t.Errorf("reply from %s, want home %s", src, w.mn.Home())
		}
	}
	_ = w.chICMP.Ping(ipv4.Zero, w.mn.Home(), 9, seq, nil)
	w.net.RunFor(3e9)
	return replies
}

func TestHierarchicalDeliveryBothDirections(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	w.enterMetro(t)

	if got := w.chPing(t, 1); got != 1 {
		t.Fatalf("replies = %d", got)
	}
	// Down: HA tunneled to the regional agent, which re-tunneled into
	// the cell. Up: the MH reverse-tunneled (Out-IE, pessimistic
	// default) to the regional agent, which relayed onward to the HA.
	if w.gfa.Stats.DownRelayed != 1 || w.gfa.Stats.UpRelayed != 1 {
		t.Errorf("gfa down=%d up=%d, want 1/1", w.gfa.Stats.DownRelayed, w.gfa.Stats.UpRelayed)
	}
	if w.ha.Stats.Forwarded != 1 || w.ha.Stats.ReverseRelayed != 1 {
		t.Errorf("ha forwarded=%d reverse=%d, want 1/1", w.ha.Stats.Forwarded, w.ha.Stats.ReverseRelayed)
	}
	if w.mn.Stats.InTunneled != 1 {
		t.Errorf("MH tunneled-in = %d, want 1", w.mn.Stats.InTunneled)
	}
}

// TestIntraMetroHandoffSkipsHomeUplink is the hierarchical tier's whole
// point: a cellA→cellB handoff re-registers with the regional agent only;
// the home agent processes no new registration and its binding stays the
// stable regional address.
func TestIntraMetroHandoffSkipsHomeUplink(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	w.enterMetro(t)
	if got := w.chPing(t, 1); got != 1 {
		t.Fatalf("warm-up replies = %d", got)
	}

	haRegs := w.ha.Stats.Registrations
	careOfB := w.cellB.NextAddr()
	w.mn.MoveToRegional(w.cellB.Seg, careOfB, w.cellB.Prefix, w.cellB.Gateway)
	w.lr.Register()
	w.net.RunFor(2e9)

	if w.ha.Stats.Registrations != haRegs {
		t.Errorf("home agent processed %d registrations during an intra-metro handoff",
			w.ha.Stats.Registrations-haRegs)
	}
	if !w.mn.Registered() {
		t.Error("home registration lost across MoveToRegional")
	}
	if got, ok := w.gfa.CareOf(w.mn.Home()); !ok || got != careOfB {
		t.Fatalf("regional binding = %v,%v; want %s", got, ok, careOfB)
	}
	if got, ok := w.ha.CareOf(w.mn.Home()); !ok || got != w.gfa.Addr() {
		t.Errorf("HA binding moved: %v,%v", got, ok)
	}
	// Delivery follows the handoff.
	if got := w.chPing(t, 2); got != 1 {
		t.Fatalf("replies after handoff = %d", got)
	}
	if w.lr.Stats.Registrations != 2 {
		t.Errorf("regional registrations = %d, want 2", w.lr.Stats.Registrations)
	}
}

// TestRegionalBindingExpiresLazily: an unrefreshed regional binding
// expires at lookup time; tunnels for it then count as NoBinding (the
// fleet's 60s lifetime + per-handoff refresh keeps this from happening
// in practice).
func TestRegionalBindingExpiresLazily(t *testing.T) {
	w := buildMetro(t, metroOpts{maxLifetime: 1})
	careOf := w.cellA.NextAddr()
	w.mn.MoveTo(w.cellA.Seg, careOf, w.cellA.Prefix, w.cellA.Gateway)
	w.lr.Register()
	w.net.RunFor(5e8) // inside the 1s granted lifetime
	if got, ok := w.gfa.CareOf(w.mn.Home()); !ok || got != careOf {
		t.Fatalf("regional binding = %v,%v; want %s", got, ok, careOf)
	}

	w.net.RunFor(2e9)
	if _, ok := w.gfa.CareOf(w.mn.Home()); ok {
		t.Fatal("regional binding survived its lifetime")
	}
	if w.gfa.Stats.Expired != 1 {
		t.Errorf("expired = %d, want 1", w.gfa.Stats.Expired)
	}
	// A tunnel for the expired binding is dropped, not misrouted.
	_ = w.chICMP.Ping(ipv4.Zero, w.mn.Home(), 9, 1, nil)
	w.net.RunFor(2e9)
	if w.gfa.Stats.NoBinding == 0 {
		t.Error("tunnel for expired binding not counted")
	}
}

func TestRegionalAuthRequired(t *testing.T) {
	// Unprovisioned, unauthenticated: refused.
	w := buildMetro(t, metroOpts{requireAuth: true})
	careOf := w.cellA.NextAddr()
	w.mn.MoveTo(w.cellA.Seg, careOf, w.cellA.Prefix, w.cellA.Gateway)
	w.lr.Register()
	w.net.RunFor(2e9)
	if w.gfa.Stats.Denied == 0 || w.lr.Stats.Fails == 0 {
		t.Fatalf("denied=%d fails=%d, want >0/>0", w.gfa.Stats.Denied, w.lr.Stats.Fails)
	}
	if _, ok := w.gfa.CareOf(w.mn.Home()); ok {
		t.Fatal("unauthenticated registration installed a binding")
	}

	// Provisioned and signed: accepted.
	w2 := buildMetro(t, metroOpts{requireAuth: true,
		lrAuth: mobileip.NewAuthenticator(testSPI, testKey)})
	w2.gfa.ProvisionKey(w2.mn.Home(), testSPI, testKey)
	got := w2.enterMetro(t)
	if w2.lr.Stats.Registrations != 1 {
		t.Errorf("authenticated registration = %d, want 1 (care-of %s)", w2.lr.Stats.Registrations, got)
	}
}

// TestRegionalRejectsForeignGateway: a request naming some other agent
// as its target is refused with "not a home agent for this host".
func TestRegionalRejectsForeignGateway(t *testing.T) {
	w := buildMetro(t, metroOpts{})

	var code uint8
	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		if rep, _, _, ok := mobileip.ParseReply(payload); ok {
			code = rep.Code
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	req := mobileip.Request{
		Lifetime:  60,
		Home:      w.mn.Home(),
		HomeAgent: w.chFar.FirstAddr(), // not the gateway
		CareOf:    w.cellA.NextAddr(),
		ID:        1,
	}
	_ = sock.SendTo(w.gfa.Addr(), udp.PortRegistration, req.Marshal())
	w.net.RunFor(1e9)
	if code != mobileip.CodeDeniedNotHomeAgent {
		t.Fatalf("code = %d, want %d", code, mobileip.CodeDeniedNotHomeAgent)
	}
	if w.gfa.Bindings() != 0 {
		t.Error("misdirected registration installed a binding")
	}
}

// TestLocalRegistrarRetriesAndAbandons: with the regional registration
// port blackholed, the registrar spends its bounded retry budget and
// gives up; once the blackhole lifts, the next Register succeeds.
func TestLocalRegistrarRetriesAndAbandons(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	careOf := w.cellA.NextAddr()
	w.mn.MoveTo(w.cellA.Seg, careOf, w.cellA.Prefix, w.cellA.Gateway)
	w.net.RunFor(2e9) // home registration completes before the fault

	bh := faults.BlackholePort(w.cellA.Seg, udp.PortRegistration)
	w.lr.Register()
	w.net.RunFor(5e9)
	// Defaults: 4 transmissions (1 fresh + 3 retransmits), then abandon.
	if w.lr.Stats.Retransmits != 3 || w.lr.Stats.Fails != 1 {
		t.Fatalf("retransmits=%d fails=%d, want 3/1", w.lr.Stats.Retransmits, w.lr.Stats.Fails)
	}
	if w.lr.Stats.Registrations != 0 {
		t.Fatal("registration succeeded through a blackhole")
	}
	bh.Remove()
	w.lr.Register()
	w.net.RunFor(2e9)
	if w.lr.Stats.Registrations != 1 {
		t.Errorf("registrations = %d after blackhole removed, want 1", w.lr.Stats.Registrations)
	}
	if got, ok := w.gfa.CareOf(w.mn.Home()); !ok || got != careOf {
		t.Errorf("regional binding = %v,%v; want %s", got, ok, careOf)
	}
}

// TestRegionalReplayWindow: the gateway's authenticated path mirrors
// the home agent's MAC-then-window ordering — replayed and stale IDs
// are refused under their own codes, a missing MAC as an auth failure.
func TestRegionalReplayWindow(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	w.gfa.ProvisionKey(w.mn.Home(), testSPI, testKey)
	auth := mobileip.NewAuthenticator(testSPI, testKey)

	var codes []uint8
	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		if rep, _, _, ok := mobileip.ParseReply(payload); ok {
			codes = append(codes, rep.Code)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	careOf := w.cellA.NextAddr()
	send := func(id uint64, sign bool) {
		req := mobileip.Request{
			Lifetime: 60, Home: w.mn.Home(), HomeAgent: w.gfa.Addr(),
			CareOf: careOf, ID: id,
		}
		b := req.Marshal()
		if sign {
			b = auth.AppendAuth(b)
		}
		_ = sock.SendTo(w.gfa.Addr(), udp.PortRegistration, b)
		w.net.RunFor(1e9)
	}

	send(200, true)  // fresh: accepted
	send(200, true)  // same ID: replay
	send(10, true)   // 190 behind the window: stale
	send(300, false) // unsigned under an association: auth failure

	want := []uint8{mobileip.CodeAccepted, mobileip.CodeDeniedReplay,
		mobileip.CodeDeniedStaleID, mobileip.CodeDeniedAuthFailed}
	if len(codes) != len(want) {
		t.Fatalf("got %d replies (%v), want %d", len(codes), codes, len(want))
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Errorf("reply[%d] code = %d, want %d", i, codes[i], want[i])
		}
	}
	if w.gfa.Stats.Registrations != 1 || w.gfa.Stats.Denied != 3 {
		t.Errorf("registrations=%d denied=%d, want 1/3", w.gfa.Stats.Registrations, w.gfa.Stats.Denied)
	}
}

// TestRegionalRefusesStaleAndGarbage: without an association the
// gateway still refuses IDs at or behind the binding's last, ignores
// unparseable registrations, and drops undecapsulatable tunnels.
func TestRegionalRefusesStaleAndGarbage(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	if w.gfa.Host() != w.gfaHost {
		t.Fatal("Host() accessor mismatch")
	}
	w.enterMetro(t)

	var code uint8
	replies := 0
	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		if rep, _, _, ok := mobileip.ParseReply(payload); ok {
			code, replies = rep.Code, replies+1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The registrar's vtime-derived IDs put the binding's lastID in the
	// billions; ID 1 is far behind it.
	req := mobileip.Request{
		Lifetime: 60, Home: w.mn.Home(), HomeAgent: w.gfa.Addr(),
		CareOf: w.cellB.NextAddr(), ID: 1,
	}
	_ = sock.SendTo(w.gfa.Addr(), udp.PortRegistration, req.Marshal())
	w.net.RunFor(1e9)
	if code != mobileip.CodeDeniedStaleID || replies != 1 {
		t.Fatalf("code=%d replies=%d, want %d/1", code, replies, mobileip.CodeDeniedStaleID)
	}

	// Garbage on the registration port: no reply at all.
	_ = sock.SendTo(w.gfa.Addr(), udp.PortRegistration, []byte{0xfe, 0x01})
	w.net.RunFor(1e9)
	if replies != 1 {
		t.Errorf("garbage registration drew a reply")
	}

	// A tunnel too short to decapsulate is dropped before the binding
	// lookup — it counts as nothing, not as NoBinding.
	noBinding := w.gfa.Stats.NoBinding
	_ = w.chFar.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoIPIP, Dst: w.gfa.Addr()},
		Payload: []byte{1, 2, 3},
	})
	w.net.RunFor(1e9)
	if w.gfa.Stats.NoBinding != noBinding {
		t.Errorf("undecapsulatable tunnel miscounted as NoBinding")
	}
}

func TestRegionalAgentPortConflict(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	_, err := routeopt.NewRegionalAgent(w.gfaHost, w.gfa.Addr(), routeopt.RegionalAgentConfig{
		HomeAgent: w.haHost.Ifaces()[0].Addr(),
	})
	if err == nil {
		t.Fatal("second regional agent on one host did not refuse")
	}
}

// TestLocalRegistrarSupersedeQuiesceRehome: a Register in flight is
// superseded by the next one (the stale reply's ID no longer matches),
// the accepted-hook reports the registered care-of address, and the
// registrar survives a quiesce/rehome migration round trip.
func TestLocalRegistrarSupersedeQuiesceRehome(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	careOf := w.cellA.NextAddr()
	w.mn.MoveTo(w.cellA.Seg, careOf, w.cellA.Prefix, w.cellA.Gateway)
	w.net.RunFor(2e9)

	var accepted []ipv4.Addr
	w.lr.OnAccepted = func(c ipv4.Addr) { accepted = append(accepted, c) }
	w.lr.Register()
	w.lr.Register() // supersedes: two requests on the wire, one exchange
	w.net.RunFor(2e9)
	if w.lr.Stats.Registrations != 1 {
		t.Fatalf("registrations = %d, want 1 (stale reply must not count)", w.lr.Stats.Registrations)
	}
	if len(accepted) != 1 || accepted[0] != careOf {
		t.Fatalf("OnAccepted saw %v, want [%s]", accepted, careOf)
	}

	w.lr.Quiesce()
	w.lr.Rehome()
	w.lr.Register()
	w.net.RunFor(2e9)
	if w.lr.Stats.Registrations != 2 {
		t.Errorf("registrations = %d after rehome, want 2", w.lr.Stats.Registrations)
	}
	if w.lr.Stats.Retransmits != 0 {
		t.Errorf("retransmits = %d on a clean LAN", w.lr.Stats.Retransmits)
	}
}

// TestLocalRegistrarDropsUnsignedReply: a registrar holding an
// association refuses unauthenticated replies — a gateway that cannot
// countersign is indistinguishable from an impostor, so the exchange
// burns its retry budget and fails closed.
func TestLocalRegistrarDropsUnsignedReply(t *testing.T) {
	w := buildMetro(t, metroOpts{
		lrAuth: mobileip.NewAuthenticator(testSPI, testKey),
		// The gateway is NOT provisioned: it accepts and replies unsigned.
	})
	careOf := w.cellA.NextAddr()
	w.mn.MoveTo(w.cellA.Seg, careOf, w.cellA.Prefix, w.cellA.Gateway)
	w.net.RunFor(2e9)

	w.lr.Register()
	w.net.RunFor(5e9)
	if w.lr.Stats.Registrations != 0 || w.lr.Stats.Fails != 1 {
		t.Fatalf("registrations=%d fails=%d, want 0/1", w.lr.Stats.Registrations, w.lr.Stats.Fails)
	}
	if w.lr.Stats.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3 (budget spent on dropped replies)", w.lr.Stats.Retransmits)
	}
}

func TestLocalRegistrarDeregister(t *testing.T) {
	w := buildMetro(t, metroOpts{})
	w.enterMetro(t)
	w.lr.Deregister()
	w.net.RunFor(1e9)
	if w.gfa.Bindings() != 0 {
		t.Errorf("bindings = %d after deregister, want 0", w.gfa.Bindings())
	}
	if w.gfa.Stats.Deregistrations != 1 {
		t.Errorf("deregistrations = %d, want 1", w.gfa.Stats.Deregistrations)
	}
}
