package routeopt_test

import (
	"bytes"
	"testing"

	"mob4x4/internal/mobileip"
	"mob4x4/internal/routeopt"
)

// FuzzParseUpdate feeds arbitrary bytes to the binding-update parser.
// Port 435 is a hostile-input boundary — any host can forge datagrams at
// a receiver — so the parser must reject garbage without panicking, and
// anything accepted must be canonical: re-marshalling the parsed update
// (plus its extension, if any) reproduces the input byte-for-byte. That
// property is what makes "the MAC covers every byte that arrived"
// checkable.
func FuzzParseUpdate(f *testing.F) {
	auth := mobileip.NewAuthenticator(0x524f, []byte("fuzz-seed-key"))
	u := sampleUpdate()
	plain := u.Marshal()
	signed := auth.AppendAuth(append([]byte{}, plain...))
	f.Add(plain)
	f.Add(signed)
	f.Add(signed[:len(signed)-1])        // truncated MAC
	f.Add(append([]byte{}, signed...)[:len(plain)+1]) // bare extension type byte
	f.Add(append(append([]byte{}, plain...), 0, 0))   // trailing garbage
	f.Add([]byte{routeopt.TypeBindingUpdate})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, ext, hasAuth, ok := routeopt.ParseUpdate(data)
		if !ok {
			return
		}
		b := u.AppendMarshal(nil)
		if hasAuth {
			b = ext.AppendMarshal(b)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("accepted update not canonical: %x -> %x", data, b)
		}
	})
}

// FuzzParseAck is FuzzParseUpdate's counterpart for the acknowledgement
// parser, which sits on the updater's own hostile boundary (any host can
// send to its ephemeral port).
func FuzzParseAck(f *testing.F) {
	auth := mobileip.NewAuthenticator(0x524f, []byte("fuzz-seed-key"))
	a := sampleAck()
	plain := a.Marshal()
	signed := auth.AppendAuth(append([]byte{}, plain...))
	f.Add(plain)
	f.Add(signed)
	f.Add(signed[:len(signed)-1])
	f.Add(append(append([]byte{}, plain...), 0))
	f.Add([]byte{routeopt.TypeBindingAck})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, ext, hasAuth, ok := routeopt.ParseAck(data)
		if !ok {
			return
		}
		b := a.AppendMarshal(nil)
		if hasAuth {
			b = ext.AppendMarshal(b)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("accepted ack not canonical: %x -> %x", data, b)
		}
	})
}
