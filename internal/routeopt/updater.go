package routeopt

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// UpdaterConfig tunes the MN-push binding updater.
type UpdaterConfig struct {
	// Lifetime is the cache TTL advertised in updates (seconds, default
	// 20). Short by design: an expired entry falls back to In-IE, so
	// the TTL bounds how long a lost revocation can misroute.
	Lifetime uint16
	// RetryInterval is the per-peer retransmission interval (default
	// 500ms); MaxRetries bounds transmissions per push (default 3).
	RetryInterval vtime.Duration
	MaxRetries    int
	// MaxPeers bounds the tracked-correspondent table (default 8).
	// Beyond it the least-recently-active peer is evicted — it keeps
	// its cached binding until TTL expiry and then degrades to In-IE.
	MaxPeers int
	// Auth, when non-nil, signs every update with the node's mobility
	// association; receivers provisioned with the same (SPI, key)
	// verify and ack under it.
	Auth *mobileip.Authenticator
}

// Updater is the mobile-node-push side of the route-optimization tier:
// it watches the node's outgoing traffic to learn which correspondents
// are active, and on handoff (PushBinding) tells each one the new
// care-of address directly — no waiting for the home agent's ICMP
// notice on the next triangle-routed packet.
//
// The MN pushes by default (rather than the HA) because the modes the
// paper's smart correspondents actually use — Out-DE/In-DE — bypass the
// home agent entirely: an HA-push tier never sees that traffic and so
// cannot know who to update. HAUpdater exists for the configurations
// where the HA does see the traffic.
type Updater struct {
	mn   *mobileip.MobileNode
	cfg  UpdaterConfig
	sock *stack.UDPSocket
	p    *pusher
	m    pushMetrics

	Stats PushStats
}

// NewUpdater installs the updater on mn's host. It chains onto the
// node's OnOutPacket hook (preserving any existing observer).
func NewUpdater(mn *mobileip.MobileNode, cfg UpdaterConfig) (*Updater, error) {
	pc := pushConfig{
		lifetime:   cfg.Lifetime,
		retry:      cfg.RetryInterval,
		maxRetries: cfg.MaxRetries,
		maxPeers:   cfg.MaxPeers,
	}
	pc.fillDefaults()
	cfg.Lifetime = pc.lifetime
	u := &Updater{mn: mn, cfg: cfg, m: resolvePushMetrics(mn.Host().Sim().Metrics)}
	sock, err := mn.Host().OpenUDP(ipv4.Zero, 0, u.handleAck)
	if err != nil {
		return nil, fmt.Errorf("routeopt: updater: %w", err)
	}
	u.sock = sock
	u.p = newPusher(mn.Host(), sock, mn.Home(), cfg.Auth, pc, &u.m, &u.Stats, mn.CareOf)
	prev := mn.OnOutPacket
	mn.OnOutPacket = func(mode core.OutMode, pkt ipv4.Packet) {
		u.noteOut(&pkt)
		if prev != nil {
			prev(mode, pkt)
		}
	}
	return u, nil
}

// noteOut tracks the destinations of the node's own traffic. Control
// traffic (registration and binding-update exchanges, anything to the
// home agent) and non-unicast destinations are not correspondents.
func (u *Updater) noteOut(pkt *ipv4.Packet) {
	dst := pkt.Dst
	if dst == u.mn.HomeAgentAddr() || dst.IsMulticast() || dst.IsBroadcast() || dst.IsZero() {
		return
	}
	if port, ok := transportDstPort(pkt); ok &&
		(port == udp.PortRegistration || port == udp.PortBindingUpdate) {
		return
	}
	u.p.notePeer(dst)
}

// PushBinding announces the node's current care-of address to every
// tracked correspondent. Call it after each handoff (the fleet's
// movement engine does), once the new attachment is live.
func (u *Updater) PushBinding() {
	u.p.push(u.mn.CareOf(), u.cfg.Lifetime)
}

// PushRevocation clears the pushed bindings (the node went home):
// lifetime zero with the home address as care-of.
func (u *Updater) PushRevocation() {
	u.p.careOf = u.mn.Home()
	for i := range u.p.slots {
		if u.p.slots[i].active {
			u.p.sendUpdate(i, 0, false)
		}
	}
}

// handleAck serves the updater's ephemeral UDP port.
func (u *Updater) handleAck(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	a, _, hasAuth, ok := ParseAck(payload)
	if !ok || a.Home != u.mn.Home() {
		return
	}
	u.p.handleAck(src, a, hasAuth, payload)
}

// ActivePeers returns the number of tracked correspondents.
func (u *Updater) ActivePeers() int { return u.p.activePeers() }

// Quiesce stops all retransmission timers and clears in-flight pushes —
// migration prep. The push after arrival (PushBinding) supersedes
// anything that was in flight.
func (u *Updater) Quiesce() { u.p.quiesce() }

// Rehome rebinds region-pinned state after the node's host migrated to
// a new shard: metric counters are re-resolved and timer handles
// dropped (the next arm recreates them on the new scheduler). The
// updater must be quiesced first.
func (u *Updater) Rehome() {
	u.m = resolvePushMetrics(u.mn.Host().Sim().Metrics)
	u.p.host = u.mn.Host()
	u.p.rehome()
}

// Close quiesces the updater and releases its socket (fleet cleanup).
func (u *Updater) Close() {
	u.p.quiesce()
	u.sock.Close()
}

// transportDstPort extracts the destination port from a UDP or TCP
// payload (both carry it at offset 2).
func transportDstPort(pkt *ipv4.Packet) (uint16, bool) {
	if pkt.Protocol != ipv4.ProtoUDP && pkt.Protocol != ipv4.ProtoTCP {
		return 0, false
	}
	if len(pkt.Payload) < 4 {
		return 0, false
	}
	return binary.BigEndian.Uint16(pkt.Payload[2:4]), true
}
