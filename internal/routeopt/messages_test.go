package routeopt_test

import (
	"bytes"
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/routeopt"
)

const testSPI uint32 = 0x524f_0001

var testKey = []byte("mob4x4-routeopt-key-0123456789ab")

func sampleUpdate() routeopt.BindingUpdate {
	return routeopt.BindingUpdate{
		Flags:    0x01,
		Lifetime: 20,
		Home:     ipv4.Addr{36, 1, 1, 3},
		CareOf:   ipv4.Addr{128, 9, 1, 4},
		ID:       0xdead_beef_cafe_0001,
	}
}

func sampleAck() routeopt.BindingAck {
	return routeopt.BindingAck{
		Code:     routeopt.AckAccepted,
		Lifetime: 20,
		Home:     ipv4.Addr{36, 1, 1, 3},
		ID:       0xdead_beef_cafe_0001,
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := sampleUpdate()
	b := u.Marshal()
	var got routeopt.BindingUpdate
	if !got.Unmarshal(b) {
		t.Fatal("unmarshal rejected own marshal")
	}
	if got != u {
		t.Fatalf("round trip: got %+v, want %+v", got, u)
	}
	// AppendMarshal extends, never clobbers.
	pre := []byte{0xaa, 0xbb}
	ext := u.AppendMarshal(pre)
	if !bytes.Equal(ext[:2], pre) || !bytes.Equal(ext[2:], b) {
		t.Fatal("AppendMarshal corrupted prefix or body")
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := sampleAck()
	a.Code = routeopt.AckDeniedReplay
	b := a.Marshal()
	var got routeopt.BindingAck
	if !got.Unmarshal(b) {
		t.Fatal("unmarshal rejected own marshal")
	}
	if got != a {
		t.Fatalf("round trip: got %+v, want %+v", got, a)
	}
}

// TestStrictLength: the codecs follow the registration protocol's
// strict-length contract — exactly the base message, nothing else.
func TestStrictLength(t *testing.T) {
	u, a := sampleUpdate(), sampleAck()
	ub, ab := u.Marshal(), a.Marshal()
	var u2 routeopt.BindingUpdate
	var a2 routeopt.BindingAck
	if u2.Unmarshal(ub[:len(ub)-1]) || u2.Unmarshal(append(append([]byte{}, ub...), 0)) {
		t.Error("update accepted wrong length")
	}
	if a2.Unmarshal(ab[:len(ab)-1]) || a2.Unmarshal(append(append([]byte{}, ab...), 0)) {
		t.Error("ack accepted wrong length")
	}
	// Wrong type byte: an ack is not an update and vice versa (lengths
	// differ too, so swap the type in place instead).
	ub2 := append([]byte{}, ub...)
	ub2[0] = routeopt.TypeBindingAck
	if u2.Unmarshal(ub2) {
		t.Error("update accepted foreign type byte")
	}
	ab2 := append([]byte{}, ab...)
	ab2[0] = routeopt.TypeBindingUpdate
	if a2.Unmarshal(ab2) {
		t.Error("ack accepted foreign type byte")
	}
}

func TestIsRevocation(t *testing.T) {
	u := sampleUpdate()
	if u.IsRevocation() {
		t.Error("live update read as revocation")
	}
	u.Lifetime = 0
	if !u.IsRevocation() {
		t.Error("zero-lifetime update not a revocation")
	}
}

func TestParseUpdateAuth(t *testing.T) {
	auth := mobileip.NewAuthenticator(testSPI, testKey)
	u := sampleUpdate()
	plain := u.Marshal()
	signed := auth.AppendAuth(append([]byte{}, plain...))

	if got, _, hasAuth, ok := routeopt.ParseUpdate(plain); !ok || hasAuth || got != u {
		t.Fatalf("plain update: got %+v hasAuth=%v ok=%v", got, hasAuth, ok)
	}
	got, ext, hasAuth, ok := routeopt.ParseUpdate(signed)
	if !ok || !hasAuth || got != u {
		t.Fatalf("signed update: got %+v hasAuth=%v ok=%v", got, hasAuth, ok)
	}
	if ext.SPI != testSPI {
		t.Errorf("ext SPI = %#x, want %#x", ext.SPI, testSPI)
	}
	if !auth.Verify(signed) {
		t.Error("MAC does not verify over the full wire image")
	}
	// Truncation, padding, or a corrupt extension header must all refuse.
	if _, _, _, ok := routeopt.ParseUpdate(signed[:len(signed)-1]); ok {
		t.Error("accepted truncated MAC")
	}
	if _, _, _, ok := routeopt.ParseUpdate(append(append([]byte{}, signed...), 0)); ok {
		t.Error("accepted trailing garbage")
	}
	bad := append([]byte{}, signed...)
	bad[len(plain)] ^= 0xff // extension type byte
	if _, _, _, ok := routeopt.ParseUpdate(bad); ok {
		t.Error("accepted corrupt extension header")
	}
}

func TestParseAckAuth(t *testing.T) {
	auth := mobileip.NewAuthenticator(testSPI, testKey)
	a := sampleAck()
	plain := a.Marshal()
	signed := auth.AppendAuth(append([]byte{}, plain...))

	if got, _, hasAuth, ok := routeopt.ParseAck(plain); !ok || hasAuth || got != a {
		t.Fatalf("plain ack: got %+v hasAuth=%v ok=%v", got, hasAuth, ok)
	}
	if got, _, hasAuth, ok := routeopt.ParseAck(signed); !ok || !hasAuth || got != a {
		t.Fatalf("signed ack: got %+v hasAuth=%v ok=%v", got, hasAuth, ok)
	}
	if _, _, _, ok := routeopt.ParseAck(signed[:len(signed)-1]); ok {
		t.Error("accepted truncated MAC")
	}
	bad := append([]byte{}, signed...)
	bad[len(plain)] ^= 0xff // extension type byte
	if _, _, _, ok := routeopt.ParseAck(bad); ok {
		t.Error("accepted corrupt extension header")
	}
}

// TestParseWrongTypeByte: a buffer of exactly the right length but the
// wrong leading type byte is somebody else's message, not ours.
func TestParseWrongTypeByte(t *testing.T) {
	u, a := sampleUpdate(), sampleAck()
	ub := u.Marshal()
	ub[0] = routeopt.TypeBindingAck
	if _, _, _, ok := routeopt.ParseUpdate(ub); ok {
		t.Error("ParseUpdate accepted foreign type byte")
	}
	ab := a.Marshal()
	ab[0] = routeopt.TypeBindingUpdate
	if _, _, _, ok := routeopt.ParseAck(ab); ok {
		t.Error("ParseAck accepted foreign type byte")
	}
	auth := mobileip.NewAuthenticator(testSPI, testKey)
	signedBad := auth.AppendAuth(ab)
	if _, _, _, ok := routeopt.ParseAck(signedBad); ok {
		t.Error("ParseAck accepted signed foreign type byte")
	}
}
