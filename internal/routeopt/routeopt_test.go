package routeopt_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/faults"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/routeopt"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

const ms = vtime.Duration(1e6)

// roWorld is the push-tier test topology:
//
//	homeLAN(36.1.1.0/24) -- homeGW -- bb0 -- bb1 -- visitGW -- visitLAN(128.9.1.0/24)
//	                                   |
//	                                 farGW -- farLAN(17.5.0.0/24)
//
// The mobile host roams to the visited LAN; the correspondent (with a
// binding-update receiver) lives on the far LAN. No binding notices —
// the push tier is the only way the correspondent learns anything.
type roWorld struct {
	net      *inet.Network
	homeLAN  *inet.LAN
	visitLAN *inet.LAN
	farLAN   *inet.LAN

	haHost *stack.Host
	ha     *mobileip.HomeAgent

	mhHost *stack.Host
	mhIfc  *stack.Iface
	mn     *mobileip.MobileNode
	mhICMP *icmphost.ICMP

	chFar  *stack.Host
	chICMP *icmphost.ICMP
	chFarC *mobileip.Correspondent
	chNear *stack.Host

	up   *routeopt.Updater
	hup  *routeopt.HAUpdater
	recv *routeopt.Receiver
}

type roOpts struct {
	auth        bool // sign updates with the mobility association
	requireAuth bool // receiver refuses homes with no association
	haPush      bool // HAUpdater instead of the MN-push Updater
	noUpdater   bool // skip the push side entirely (receiver-only tests)
}

func buildROWorld(t testing.TB, opts roOpts) *roWorld {
	t.Helper()
	w := &roWorld{net: inet.New(42)}
	n := w.net

	lat := netsim.SegmentOpts{Latency: 1 * ms}
	w.homeLAN = n.AddLAN("home", "36.1.1.0/24", lat)
	w.visitLAN = n.AddLAN("visit", "128.9.1.0/24", lat)
	w.farLAN = n.AddLAN("far", "17.5.0.0/24", lat)

	homeGW := n.AddRouter("homeGW")
	visitGW := n.AddRouter("visitGW")
	farGW := n.AddRouter("farGW")
	bb := n.Chain("bb", 2, 5*ms)
	n.AttachRouter(homeGW, w.homeLAN)
	n.AttachRouter(visitGW, w.visitLAN)
	n.AttachRouter(farGW, w.farLAN)
	n.Link(homeGW, bb[0], 5*ms)
	n.Link(visitGW, bb[1], 5*ms)
	n.Link(farGW, bb[0], 5*ms)

	w.haHost = n.AddHost("ha", w.homeLAN)
	mh, mhIfc := n.AddMobileHost("mh", w.homeLAN)
	w.mhHost, w.mhIfc = mh, mhIfc
	w.chFar = n.AddHost("chFar", w.farLAN)
	w.chNear = n.AddHost("chNear", w.visitLAN)
	n.ComputeRoutes()

	var err error
	w.ha, err = mobileip.NewHomeAgent(w.haHost, w.haHost.Ifaces()[0], mobileip.HomeAgentConfig{})
	if err != nil {
		t.Fatalf("NewHomeAgent: %v", err)
	}

	var auth *mobileip.Authenticator
	if opts.auth {
		auth = mobileip.NewAuthenticator(testSPI, testKey)
	}

	w.mhICMP = icmphost.Install(w.mhHost)
	w.mn, err = mobileip.NewMobileNode(w.mhHost, w.mhIfc, mobileip.MobileNodeConfig{
		Home:       w.mhIfc.Addr(),
		HomePrefix: w.homeLAN.Prefix,
		HomeAgent:  w.haHost.Ifaces()[0].Addr(),
		Selector:   core.NewSelector(core.StartOptimistic),
	})
	if err != nil {
		t.Fatalf("NewMobileNode: %v", err)
	}

	w.chICMP = icmphost.Install(w.chFar)
	w.chFarC = mobileip.NewCorrespondent(w.chFar, w.chICMP, mobileip.CorrespondentConfig{
		CanDecapsulate: true,
		MobileAware:    true,
	})
	w.recv, err = routeopt.NewReceiver(w.chFarC, routeopt.ReceiverConfig{RequireAuth: opts.requireAuth})
	if err != nil {
		t.Fatalf("NewReceiver: %v", err)
	}
	if opts.auth {
		w.recv.ProvisionKey(w.mn.Home(), testSPI, testKey)
	}

	switch {
	case opts.noUpdater:
	case opts.haPush:
		w.hup, err = routeopt.NewHAUpdater(w.ha, routeopt.HAUpdaterConfig{})
		if err != nil {
			t.Fatalf("NewHAUpdater: %v", err)
		}
		w.hup.ProvisionHome(w.mn.Home(), auth)
	default:
		w.up, err = routeopt.NewUpdater(w.mn, routeopt.UpdaterConfig{Auth: auth})
		if err != nil {
			t.Fatalf("NewUpdater: %v", err)
		}
	}
	return w
}

func (w *roWorld) roam(t testing.TB) ipv4.Addr {
	t.Helper()
	careOf := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(2e9)
	if !w.mn.Registered() {
		t.Fatalf("mobile node failed to register (care-of %s)", careOf)
	}
	return careOf
}

// chPing sends one echo from the far correspondent to the MH's home
// address and returns how many replies came back within 3s.
func (w *roWorld) chPing(seq uint16) int {
	replies := 0
	w.chICMP.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }
	_ = w.chICMP.Ping(ipv4.Zero, w.mn.Home(), 7, seq, nil)
	w.net.RunFor(3e9)
	return replies
}

// teachUpdater sends MH traffic to the far correspondent so the updater
// learns it as an active peer.
func (w *roWorld) teachUpdater(t testing.TB) {
	t.Helper()
	_ = w.mhICMP.Ping(ipv4.Zero, w.chFar.FirstAddr(), 1, 1, nil)
	w.net.RunFor(3e9)
	if got := w.up.ActivePeers(); got != 1 {
		t.Fatalf("ActivePeers = %d, want 1 (updater did not learn from traffic)", got)
	}
}

func TestPushBindingReachesCorrespondent(t *testing.T) {
	w := buildROWorld(t, roOpts{})
	careOf := w.roam(t)
	w.teachUpdater(t)

	w.up.PushBinding()
	w.net.RunFor(2e9)

	if w.recv.Stats.Updates != 1 || w.recv.Stats.Accepted != 1 {
		t.Fatalf("receiver updates=%d accepted=%d, want 1/1", w.recv.Stats.Updates, w.recv.Stats.Accepted)
	}
	if w.up.Stats.UpdatesSent != 1 || w.up.Stats.Acks != 1 {
		t.Fatalf("updater sent=%d acks=%d, want 1/1", w.up.Stats.UpdatesSent, w.up.Stats.Acks)
	}
	if w.up.Stats.Retransmits != 0 {
		t.Errorf("retransmits = %d on a clean path", w.up.Stats.Retransmits)
	}
	if b, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok || b.CareOf != careOf {
		t.Fatalf("correspondent binding = %+v,%v; want care-of %s", b, ok, careOf)
	}

	// The pushed binding takes effect: CH traffic now goes In-DE, the
	// home agent never touches it.
	fwd := w.ha.Stats.Forwarded
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d", got)
	}
	if w.chFarC.Stats.SentInDE != 1 {
		t.Errorf("SentInDE = %d, want 1", w.chFarC.Stats.SentInDE)
	}
	if w.ha.Stats.Forwarded != fwd {
		t.Errorf("HA forwarded %d packets after push", w.ha.Stats.Forwarded-fwd)
	}
}

func TestPushAuthenticatedEndToEnd(t *testing.T) {
	w := buildROWorld(t, roOpts{auth: true, requireAuth: true})
	careOf := w.roam(t)
	w.teachUpdater(t)

	w.up.PushBinding()
	w.net.RunFor(2e9)

	if w.up.Stats.Acks != 1 || w.recv.Stats.Accepted != 1 {
		t.Fatalf("acks=%d accepted=%d, want 1/1", w.up.Stats.Acks, w.recv.Stats.Accepted)
	}
	if b, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok || b.CareOf != careOf {
		t.Fatalf("binding = %+v,%v", b, ok)
	}
}

// TestUnauthenticatedPushNacked: a receiver that requires auth refuses
// an unsigned update; the updater drops the peer from the push set and
// traffic keeps flowing In-IE — the hard fallback.
func TestUnauthenticatedPushNacked(t *testing.T) {
	w := buildROWorld(t, roOpts{requireAuth: true})
	w.roam(t)
	w.teachUpdater(t)

	w.up.PushBinding()
	w.net.RunFor(2e9)

	if w.up.Stats.Nacks != 1 || w.recv.Stats.Refused != 1 {
		t.Fatalf("nacks=%d refused=%d, want 1/1", w.up.Stats.Nacks, w.recv.Stats.Refused)
	}
	if got := w.up.ActivePeers(); got != 0 {
		t.Errorf("ActivePeers = %d after nack, want 0", got)
	}
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); ok {
		t.Error("binding learned from a refused update")
	}
	// Fallback: the conversation survives via In-IE triangle routing.
	fwd := w.ha.Stats.Forwarded
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d — refused push lost the conversation", got)
	}
	if w.ha.Stats.Forwarded != fwd+1 {
		t.Errorf("HA forwarded = %d, want %d (In-IE fallback)", w.ha.Stats.Forwarded, fwd+1)
	}
}

// TestBlackholedPushFallsBackToInIE is the fault-injection acceptance
// trial in miniature: binding updates are blackholed, the updater
// retransmits its bounded budget and abandons, and no conversation is
// lost — traffic simply keeps triangle-routing.
func TestBlackholedPushFallsBackToInIE(t *testing.T) {
	w := buildROWorld(t, roOpts{})
	w.roam(t)
	w.teachUpdater(t)

	bh := faults.BlackholePort(w.visitLAN.Seg, udp.PortBindingUpdate)
	w.up.PushBinding()
	w.net.RunFor(4e9)

	// Defaults: 3 transmissions (1 fresh + 2 retransmits), then abandon.
	if w.up.Stats.UpdatesSent != 3 || w.up.Stats.Retransmits != 2 {
		t.Fatalf("sent=%d retransmits=%d, want 3/2", w.up.Stats.UpdatesSent, w.up.Stats.Retransmits)
	}
	if w.up.Stats.Abandons != 1 || w.up.Stats.Acks != 0 {
		t.Fatalf("abandons=%d acks=%d, want 1/0", w.up.Stats.Abandons, w.up.Stats.Acks)
	}
	if w.recv.Stats.Updates != 0 {
		t.Fatalf("receiver saw %d updates through a blackhole", w.recv.Stats.Updates)
	}
	// The peer stays in the push set (it refused nothing), and the
	// conversation survives In-IE.
	if got := w.up.ActivePeers(); got != 1 {
		t.Errorf("ActivePeers = %d, want 1", got)
	}
	fwd := w.ha.Stats.Forwarded
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d — blackholed push lost the conversation", got)
	}
	if w.ha.Stats.Forwarded != fwd+1 {
		t.Errorf("HA forwarded = %d, want %d", w.ha.Stats.Forwarded, fwd+1)
	}
	bh.Remove()

	// With the blackhole gone the next push goes through.
	w.up.PushBinding()
	w.net.RunFor(2e9)
	if w.up.Stats.Acks != 1 {
		t.Errorf("acks = %d after blackhole removed, want 1", w.up.Stats.Acks)
	}
}

func TestPushRevocationForgetsBinding(t *testing.T) {
	w := buildROWorld(t, roOpts{})
	w.roam(t)
	w.teachUpdater(t)
	w.up.PushBinding()
	w.net.RunFor(2e9)
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok {
		t.Fatal("push did not land")
	}

	w.up.PushRevocation()
	w.net.RunFor(2e9)
	if w.recv.Stats.Revocations != 1 {
		t.Fatalf("revocations = %d, want 1", w.recv.Stats.Revocations)
	}
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); ok {
		t.Error("binding survived revocation")
	}
	// Traffic reverts to the home agent.
	fwd := w.ha.Stats.Forwarded
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d", got)
	}
	if w.ha.Stats.Forwarded != fwd+1 {
		t.Errorf("CH did not revert to In-IE after revocation")
	}
}

// TestCachedBindingExpiresToInIE: the pushed cache TTL is the safety
// net — after it runs out with no refresh, the correspondent reverts to
// triangle routing on its own.
func TestCachedBindingExpiresToInIE(t *testing.T) {
	w := buildROWorld(t, roOpts{})
	w.roam(t)
	w.teachUpdater(t)
	w.up.PushBinding() // default TTL 20s
	w.net.RunFor(2e9)
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok {
		t.Fatal("push did not land")
	}
	w.net.RunFor(25e9)
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); ok {
		t.Fatal("binding survived its TTL")
	}
	fwd := w.ha.Stats.Forwarded
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d", got)
	}
	if w.ha.Stats.Forwarded != fwd+1 {
		t.Error("CH did not fall back to In-IE after TTL expiry")
	}
}

// TestReceiverReplayWindow drives the receiver's authenticated path with
// hand-crafted datagrams: a fresh ID is accepted, the same ID again is
// refused as a replay, an ID far behind the window as stale, and a
// tampered MAC as an auth failure.
func TestReceiverReplayWindow(t *testing.T) {
	w := buildROWorld(t, roOpts{noUpdater: true, requireAuth: true})
	careOf := w.roam(t)
	w.recv.ProvisionKey(w.mn.Home(), testSPI, testKey)
	auth := mobileip.NewAuthenticator(testSPI, testKey)

	var codes []uint8
	sock, err := w.chNear.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		if a, _, _, ok := routeopt.ParseAck(payload); ok {
			codes = append(codes, a.Code)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func(id uint64, corrupt bool) {
		u := routeopt.BindingUpdate{Lifetime: 20, Home: w.mn.Home(), CareOf: careOf, ID: id}
		b := auth.AppendAuth(u.Marshal())
		if corrupt {
			b[len(b)-1] ^= 0xff
		}
		_ = sock.SendTo(w.chFar.FirstAddr(), udp.PortBindingUpdate, b)
		w.net.RunFor(1e9)
	}

	send(200, false) // fresh: accepted
	send(200, false) // same ID: replay
	send(10, false)  // 190 behind the window: stale
	send(300, true)  // tampered MAC: auth failure

	want := []uint8{routeopt.AckAccepted, routeopt.AckDeniedReplay, routeopt.AckDeniedStaleID, routeopt.AckDeniedAuthFailed}
	if len(codes) != len(want) {
		t.Fatalf("got %d acks (%v), want %d", len(codes), codes, len(want))
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Errorf("ack[%d] code = %d, want %d", i, codes[i], want[i])
		}
	}
	if w.recv.Stats.Accepted != 1 || w.recv.Stats.Refused != 3 {
		t.Errorf("accepted=%d refused=%d, want 1/3", w.recv.Stats.Accepted, w.recv.Stats.Refused)
	}
}

// TestReceiverMalformedIgnored: garbage on port 435 is counted and
// dropped without an ack.
func TestReceiverMalformedIgnored(t *testing.T) {
	w := buildROWorld(t, roOpts{noUpdater: true})
	w.roam(t)
	acked := 0
	sock, err := w.chNear.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		acked++
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sock.SendTo(w.chFar.FirstAddr(), udp.PortBindingUpdate, []byte{0xff, 0x00, 0x01})
	w.net.RunFor(1e9)
	if w.recv.Stats.Malformed != 1 || acked != 0 {
		t.Errorf("malformed=%d acks=%d, want 1/0", w.recv.Stats.Malformed, acked)
	}
}

// TestHAUpdaterPushesOnHandoff: the HA-push variant learns
// correspondents from the traffic it forwards and pushes when the
// binding's care-of address changes.
func TestHAUpdaterPushesOnHandoff(t *testing.T) {
	w := buildROWorld(t, roOpts{haPush: true})
	w.roam(t)

	// Triangle-routed traffic teaches the HA who the correspondent is.
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d", got)
	}
	if got := w.hup.ActivePeers(w.mn.Home()); got != 1 {
		t.Fatalf("HA updater ActivePeers = %d, want 1", got)
	}
	// A renewal at the same care-of address pushes nothing.
	w.mn.Reregister()
	w.net.RunFor(2e9)
	if w.hup.Stats.UpdatesSent != 0 {
		t.Fatalf("push on same-care-of renewal: sent=%d", w.hup.Stats.UpdatesSent)
	}

	// Handoff: a new care-of address triggers the push.
	careOf2 := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf2, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(3e9)
	if w.hup.Stats.UpdatesSent != 1 || w.hup.Stats.Acks != 1 {
		t.Fatalf("sent=%d acks=%d, want 1/1", w.hup.Stats.UpdatesSent, w.hup.Stats.Acks)
	}
	if b, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok || b.CareOf != careOf2 {
		t.Fatalf("binding = %+v,%v; want care-of %s", b, ok, careOf2)
	}
}

// TestUpdaterQuiesceRehome: the migration round trip. A push in flight
// is quiesced, the updater rehomed, and the push after arrival
// supersedes it — the straggler ack for the superseded ID matches no
// slot and is ignored.
func TestUpdaterQuiesceRehome(t *testing.T) {
	w := buildROWorld(t, roOpts{})
	careOf := w.roam(t)
	w.teachUpdater(t)

	w.up.PushBinding()
	w.up.Quiesce()
	w.up.Rehome()
	w.up.PushBinding()
	w.net.RunFor(3e9)

	if w.up.Stats.UpdatesSent != 2 || w.up.Stats.Acks != 1 {
		t.Fatalf("sent=%d acks=%d, want 2/1 (superseded ack must not match)",
			w.up.Stats.UpdatesSent, w.up.Stats.Acks)
	}
	if w.up.Stats.Retransmits != 0 || w.up.Stats.Abandons != 0 {
		t.Errorf("retransmits=%d abandons=%d after quiesce, want 0/0",
			w.up.Stats.Retransmits, w.up.Stats.Abandons)
	}
	if b, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok || b.CareOf != careOf {
		t.Fatalf("binding = %+v,%v; want care-of %s", b, ok, careOf)
	}
}

// TestHookChainsPreserved: both updaters chain onto hooks that the
// fleet's own bookkeeping may already occupy — installing an updater
// must not silence the previous observer.
func TestHookChainsPreserved(t *testing.T) {
	w := buildROWorld(t, roOpts{noUpdater: true})
	outSeen, fwdSeen, bindSeen := 0, 0, 0
	w.mn.OnOutPacket = func(core.OutMode, ipv4.Packet) { outSeen++ }
	w.ha.OnForward = func(correspondent, home ipv4.Addr) { fwdSeen++ }
	w.ha.OnBind = func(home, careOf ipv4.Addr) { bindSeen++ }

	up, err := routeopt.NewUpdater(w.mn, routeopt.UpdaterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hup, err := routeopt.NewHAUpdater(w.ha, routeopt.HAUpdaterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hup.ProvisionHome(w.mn.Home(), nil)

	w.roam(t)
	_ = w.mhICMP.Ping(ipv4.Zero, w.chFar.FirstAddr(), 1, 1, nil)
	w.net.RunFor(3e9)
	if got := w.chPing(1); got != 1 {
		t.Fatalf("replies = %d", got)
	}
	if bindSeen == 0 {
		t.Error("previous OnBind observer silenced")
	}
	if fwdSeen == 0 {
		t.Error("previous OnForward observer silenced")
	}
	if outSeen == 0 {
		t.Error("previous OnOutPacket observer silenced")
	}
	if got := up.ActivePeers(); got != 1 {
		t.Errorf("updater ActivePeers = %d, want 1 (chained hook broke learning)", got)
	}
	// An unprovisioned home has no engine and therefore no peers.
	if got := hup.ActivePeers(w.chNear.FirstAddr()); got != 0 {
		t.Errorf("ActivePeers(unprovisioned) = %d, want 0", got)
	}
}

// TestReceiverPortConflict: one binding-update receiver per host — the
// well-known port is single-owner.
func TestReceiverPortConflict(t *testing.T) {
	w := buildROWorld(t, roOpts{noUpdater: true})
	if _, err := routeopt.NewReceiver(w.chFarC, routeopt.ReceiverConfig{}); err == nil {
		t.Fatal("second receiver on one host did not refuse")
	}
}
