package routeopt

import (
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// HAUpdaterConfig tunes the HA-push binding updater.
type HAUpdaterConfig struct {
	// Lifetime, RetryInterval, MaxRetries, MaxPeers: as UpdaterConfig,
	// applied per provisioned home.
	Lifetime      uint16
	RetryInterval vtime.Duration
	MaxRetries    int
	MaxPeers      int
}

// HAUpdater is the configurable home-agent-push alternative to Updater:
// the agent learns each binding's active correspondents from the
// packets it tunnels (OnForward) and pushes the new care-of address to
// them when the binding moves (OnBind). It only sees In-IE traffic —
// correspondents already routing In-DE bypass the agent and stay
// invisible to it — which is why the MN-push updater is the fleet
// default and this one is the configuration knob.
type HAUpdater struct {
	ha   *mobileip.HomeAgent
	cfg  HAUpdaterConfig
	pc   pushConfig
	sock *stack.UDPSocket
	m    pushMetrics

	// pushers holds one engine per provisioned home. Point lookups
	// only; never iterated — pusherList carries the deterministic
	// (provisioning-order) traversal for Close.
	pushers    map[ipv4.Addr]*pusher
	pusherList []*pusher

	Stats PushStats
}

// NewHAUpdater installs the updater on ha's host, chaining onto the
// agent's OnForward and OnBind hooks.
func NewHAUpdater(ha *mobileip.HomeAgent, cfg HAUpdaterConfig) (*HAUpdater, error) {
	pc := pushConfig{
		lifetime:   cfg.Lifetime,
		retry:      cfg.RetryInterval,
		maxRetries: cfg.MaxRetries,
		maxPeers:   cfg.MaxPeers,
	}
	pc.fillDefaults()
	h := &HAUpdater{
		ha: ha, cfg: cfg, pc: pc,
		m:       resolvePushMetrics(ha.Host().Sim().Metrics),
		pushers: make(map[ipv4.Addr]*pusher),
	}
	sock, err := ha.Host().OpenUDP(ipv4.Zero, 0, h.handleAck)
	if err != nil {
		return nil, fmt.Errorf("routeopt: ha updater: %w", err)
	}
	h.sock = sock
	prevForward := ha.OnForward
	ha.OnForward = func(correspondent, home ipv4.Addr) {
		if p := h.pushers[home]; p != nil {
			p.notePeer(correspondent)
		}
		if prevForward != nil {
			prevForward(correspondent, home)
		}
	}
	prevBind := ha.OnBind
	ha.OnBind = func(home, careOf ipv4.Addr) {
		h.onBind(home, careOf)
		if prevBind != nil {
			prevBind(home, careOf)
		}
	}
	return h, nil
}

// ProvisionHome enables pushing for one home address. auth (usually the
// same association the agent verifies that home's registrations with)
// signs its updates; nil pushes unauthenticated.
func (h *HAUpdater) ProvisionHome(home ipv4.Addr, auth *mobileip.Authenticator) {
	p := newPusher(h.ha.Host(), h.sock, home, auth, h.pc,
		&h.m, &h.Stats, h.ha.Addr)
	h.pushers[home] = p
	h.pusherList = append(h.pusherList, p)
}

// onBind fires on every accepted registration: push only when the
// care-of address actually changed (renewals at the same address are
// the common case and need no update).
func (h *HAUpdater) onBind(home, careOf ipv4.Addr) {
	p := h.pushers[home]
	if p == nil || p.careOf == careOf {
		return
	}
	p.push(careOf, h.pc.lifetime)
}

// handleAck serves the updater's ephemeral UDP port, routing each ack
// to its home's engine.
func (h *HAUpdater) handleAck(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	a, _, hasAuth, ok := ParseAck(payload)
	if !ok {
		return
	}
	if p := h.pushers[a.Home]; p != nil {
		p.handleAck(src, a, hasAuth, payload)
	}
}

// ActivePeers returns the number of correspondents tracked for home.
func (h *HAUpdater) ActivePeers(home ipv4.Addr) int {
	if p := h.pushers[home]; p != nil {
		return p.activePeers()
	}
	return 0
}

// Close quiesces every per-home engine and releases the socket (fleet
// cleanup). The list, not the map, carries the traversal: provisioning
// order is deterministic, map order is not.
func (h *HAUpdater) Close() {
	for _, p := range h.pusherList {
		p.quiesce()
	}
	h.sock.Close()
}
