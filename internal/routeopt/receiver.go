package routeopt

import (
	"fmt"

	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
)

// ReceiverConfig tunes a correspondent's binding-update endpoint.
type ReceiverConfig struct {
	// RequireAuth refuses every update for a home with no provisioned
	// association (nack code 136). Without it, unprovisioned homes keep
	// the legacy trust-the-sender behavior — same split as the home
	// agent's RequireAuth.
	RequireAuth bool
	// MaxLifetime caps the cache TTL granted to an update (seconds;
	// 0 = accept the sender's). The granted value is echoed in the ack.
	MaxLifetime uint16
}

// ReceiverStats counts receiver activity.
type ReceiverStats struct {
	Updates     uint64 // well-formed updates arrived
	Accepted    uint64 // bindings learned (or revoked)
	Revocations uint64
	Refused     uint64 // nacked: auth, replay, or no association
	Malformed   uint64
}

// recvAssoc is one provisioned mobility association at the receiver:
// the shared-key authenticator plus a sliding identification window,
// per home — the same split as the home agent's authState.
type recvAssoc struct {
	auth   *mobileip.Authenticator
	window mobileip.ReplayWindow
}

// Receiver is the correspondent-side half of pushed binding updates: a
// UDP endpoint on port 435 that verifies updates, feeds them into the
// correspondent's binding cache (Correspondent.LearnBinding, whose TTL
// expiry is the In-IE fallback), and acks or nacks each one. The
// correspondent must be MobileAware — a receiver without a cache to
// feed would be pointless.
type Receiver struct {
	c    *mobileip.Correspondent
	host *stack.Host
	cfg  ReceiverConfig
	sock *stack.UDPSocket

	// assoc maps home addresses to provisioned associations. Point
	// lookups only; never iterated.
	assoc map[ipv4.Addr]*recvAssoc

	Stats ReceiverStats

	// Metric instruments, resolved once at construction.
	mUpdates  *metrics.Counter
	mAccepted *metrics.Counter
	mRefused  *metrics.Counter
}

// NewReceiver installs the binding-update endpoint on c's host.
func NewReceiver(c *mobileip.Correspondent, cfg ReceiverConfig) (*Receiver, error) {
	reg := c.Host().Sim().Metrics
	r := &Receiver{
		c: c, host: c.Host(), cfg: cfg,
		assoc:     make(map[ipv4.Addr]*recvAssoc),
		mUpdates:  reg.Counter("ro/recv_updates"),
		mAccepted: reg.Counter("ro/recv_accepted"),
		mRefused:  reg.Counter("ro/recv_refused"),
	}
	sock, err := c.Host().OpenUDP(ipv4.Zero, udp.PortBindingUpdate, r.handleUpdate)
	if err != nil {
		return nil, fmt.Errorf("routeopt: receiver: %w", err)
	}
	r.sock = sock
	return r, nil
}

// ProvisionKey installs the mobility association for a home address:
// updates for it must from now on carry a valid authenticator under
// (spi, key), and this receiver's acks carry one back.
func (r *Receiver) ProvisionKey(home ipv4.Addr, spi uint32, key []byte) {
	r.assoc[home] = &recvAssoc{auth: mobileip.NewAuthenticator(spi, key)}
}

// Close releases the receiver's socket (fleet cleanup). The
// correspondent's cached bindings stay — their TTLs expire lazily.
func (r *Receiver) Close() { r.sock.Close() }

// handleUpdate serves UDP 435.
func (r *Receiver) handleUpdate(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	u, _, hasAuth, ok := ParseUpdate(payload)
	if !ok {
		r.Stats.Malformed++
		return
	}
	r.Stats.Updates++
	r.mUpdates.Inc()
	st := r.assoc[u.Home]
	ack := BindingAck{Code: AckAccepted, Lifetime: u.Lifetime, Home: u.Home, ID: u.ID}
	switch {
	case st == nil && r.cfg.RequireAuth:
		ack.Code = AckDeniedUnknownHome
	case st != nil:
		// Authenticated path: MAC first, then the replay window — the
		// same ordering (and drop-cause taxonomy) as the home agent's
		// registration path.
		if !hasAuth || !st.auth.Verify(payload) {
			r.host.Sim().Metrics.Drop(metrics.DropAuthBadMAC)
			ack.Code = AckDeniedAuthFailed
			break
		}
		switch st.window.Check(u.ID) {
		case mobileip.ReplayDuplicate:
			r.host.Sim().Metrics.Drop(metrics.DropAuthReplay)
			ack.Code = AckDeniedReplay
		case mobileip.ReplayStale:
			r.host.Sim().Metrics.Drop(metrics.DropAuthStaleID)
			ack.Code = AckDeniedStaleID
		}
	}
	if ack.Code == AckAccepted {
		if r.cfg.MaxLifetime > 0 && ack.Lifetime > r.cfg.MaxLifetime {
			ack.Lifetime = r.cfg.MaxLifetime
		}
		r.accept(&u, ack.Lifetime)
	} else {
		r.Stats.Refused++
		r.mRefused.Inc()
	}
	// Ack into a pooled buffer; SendToFrom copies before returning.
	// Acks under an association are signed — a forged nack must not be
	// able to stop the updater's retransmissions.
	buf := netsim.GetBuf()
	b := ack.AppendMarshal(buf.B)
	if st != nil {
		b = st.auth.AppendAuth(b)
	}
	_ = r.sock.SendToFrom(dst, src, srcPort, b)
	netsim.PutBuf(buf)
}

// accept applies a verified update to the correspondent's cache.
func (r *Receiver) accept(u *BindingUpdate, lifetime uint16) {
	r.Stats.Accepted++
	r.mAccepted.Inc()
	if u.IsRevocation() {
		r.Stats.Revocations++
		r.c.ForgetBinding(u.Home)
		return
	}
	r.c.LearnBinding(core.Binding{Home: u.Home, CareOf: u.CareOf}, lifetime)
}
