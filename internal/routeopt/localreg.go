package routeopt

import (
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// LocalRegistrarConfig tunes the mobile node's regional registration
// client.
type LocalRegistrarConfig struct {
	// Regional is the gateway agent's address.
	Regional ipv4.Addr
	// Lifetime is the regional registration lifetime requested
	// (seconds, default 60).
	Lifetime uint16
	// RetryInterval is the retransmission interval (default 500ms);
	// MaxRetries bounds attempts per exchange (default 4).
	RetryInterval vtime.Duration
	MaxRetries    int
	// Auth, when non-nil, signs regional registrations; the gateway
	// must hold the same association (RegionalAgent.ProvisionKey).
	Auth *mobileip.Authenticator
}

// LocalRegistrarStats counts regional registration activity.
type LocalRegistrarStats struct {
	Registrations uint64 // accepted exchanges
	Fails         uint64 // denied or retries exhausted
	Retransmits   uint64
}

// LocalRegistrar is the hierarchical tier's mobile-node side: after an
// intra-metro handoff it registers the new cell care-of address with
// the regional gateway — a LAN-scale exchange — instead of re-running
// the home registration across the uplink. It owns its own socket and
// retry timer so it composes with the node's home registration state
// machine instead of entangling it.
type LocalRegistrar struct {
	mn   *mobileip.MobileNode
	cfg  LocalRegistrarConfig
	sock *stack.UDPSocket

	timer    *vtime.Timer
	awaiting bool
	tries    int
	lastID   uint64
	careOf   ipv4.Addr // care-of address the in-flight exchange registers

	// OnAccepted, when non-nil, fires on every accepted regional
	// registration with the care-of address the gateway now holds.
	OnAccepted func(careOf ipv4.Addr)

	Stats LocalRegistrarStats

	// Metric instruments, resolved once at construction.
	mRegs  *metrics.Counter
	mFails *metrics.Counter
}

// NewLocalRegistrar installs the regional registration client on mn's
// host.
func NewLocalRegistrar(mn *mobileip.MobileNode, cfg LocalRegistrarConfig) (*LocalRegistrar, error) {
	if cfg.Lifetime == 0 {
		cfg.Lifetime = 60
	}
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = vtime.Duration(500e6)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	reg := mn.Host().Sim().Metrics
	lr := &LocalRegistrar{
		mn: mn, cfg: cfg,
		mRegs:  reg.Counter("ro/local_registrations"),
		mFails: reg.Counter("ro/local_reg_fails"),
	}
	sock, err := mn.Host().OpenUDP(ipv4.Zero, 0, lr.handleReply)
	if err != nil {
		return nil, fmt.Errorf("routeopt: local registrar: %w", err)
	}
	lr.sock = sock
	return lr, nil
}

// Register starts a regional registration exchange for the node's
// current care-of address. Call it after every intra-metro handoff
// (MoveToRegional); a new call supersedes any exchange in flight.
func (lr *LocalRegistrar) Register() {
	lr.careOf = lr.mn.CareOf()
	lr.tries = 0
	lr.awaiting = true
	lr.send()
	lr.arm()
}

// Deregister clears the regional binding (the node left the metro or
// went home).
func (lr *LocalRegistrar) Deregister() {
	lr.timer.Stop()
	lr.awaiting = false
	lr.careOf = lr.mn.Home()
	lr.sendLifetime(0)
}

func (lr *LocalRegistrar) send() { lr.sendLifetime(lr.cfg.Lifetime) }

// sendLifetime transmits one regional registration request. Pooled
// buffer, preallocated HMAC state: zero allocations per send.
func (lr *LocalRegistrar) sendLifetime(lifetime uint16) {
	req := mobileip.Request{
		Lifetime:  lifetime,
		Home:      lr.mn.Home(),
		HomeAgent: lr.cfg.Regional,
		CareOf:    lr.careOf,
		ID:        lr.nextID(),
	}
	buf := netsim.GetBuf()
	b := req.AppendMarshal(buf.B)
	if lr.cfg.Auth != nil {
		b = lr.cfg.Auth.AppendAuth(b)
	}
	_ = lr.sock.SendToFrom(lr.mn.CareOf(), lr.cfg.Regional, udp.PortRegistration, b)
	netsim.PutBuf(buf)
}

// nextID mirrors the node's vtime-monotone identification scheme.
func (lr *LocalRegistrar) nextID() uint64 {
	id := uint64(lr.mn.Host().Sim().Now())
	if id <= lr.lastID {
		id = lr.lastID + 1
	}
	lr.lastID = id
	return id
}

func (lr *LocalRegistrar) arm() {
	if lr.timer == nil {
		lr.timer = lr.mn.Host().Sched().After(lr.cfg.RetryInterval, lr.onRetry)
	} else {
		lr.timer.Reset(lr.cfg.RetryInterval)
	}
}

func (lr *LocalRegistrar) onRetry() {
	if !lr.awaiting {
		return
	}
	lr.tries++
	if lr.tries >= lr.cfg.MaxRetries {
		lr.awaiting = false
		lr.Stats.Fails++
		lr.mFails.Inc()
		lr.mn.Host().Sim().Trace.Record(netsim.Event{
			Kind: netsim.EventNote, Time: lr.mn.Host().Sim().Now(), Where: lr.mn.Host().Name(),
			Detail: "regional registration abandoned: retries exhausted",
		})
		return
	}
	lr.Stats.Retransmits++
	lr.send()
	lr.arm()
}

// handleReply serves the registrar's ephemeral UDP port.
func (lr *LocalRegistrar) handleReply(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	rep, _, hasAuth, ok := mobileip.ParseReply(payload)
	if !ok || rep.Home != lr.mn.Home() || rep.ID != lr.lastID {
		return
	}
	if lr.cfg.Auth != nil && (!hasAuth || !lr.cfg.Auth.Verify(payload)) {
		lr.mn.Host().Sim().Metrics.Drop(metrics.DropAuthBadMAC)
		return
	}
	if !lr.awaiting {
		return
	}
	lr.awaiting = false
	lr.timer.Stop()
	if rep.Code != mobileip.CodeAccepted {
		lr.Stats.Fails++
		lr.mFails.Inc()
		return
	}
	lr.Stats.Registrations++
	lr.mRegs.Inc()
	if lr.OnAccepted != nil {
		lr.OnAccepted(lr.careOf)
	}
}

// Quiesce stops the retry timer and clears in-flight state (migration
// prep; the Register after arrival supersedes it).
func (lr *LocalRegistrar) Quiesce() {
	lr.timer.Stop()
	lr.awaiting = false
}

// Close quiesces the registrar and releases its socket (fleet cleanup).
func (lr *LocalRegistrar) Close() {
	lr.Quiesce()
	lr.sock.Close()
}

// Rehome rebinds region-pinned state after the node's host migrated:
// counters re-resolved, the timer handle dropped (the next arm
// recreates it on the new scheduler). Quiesce first.
func (lr *LocalRegistrar) Rehome() {
	reg := lr.mn.Host().Sim().Metrics
	lr.mRegs = reg.Counter("ro/local_registrations")
	lr.mFails = reg.Counter("ro/local_reg_fails")
	lr.timer = nil
}
