package routeopt

import (
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/udp"
)

// testPusher builds a pusher wired to a minimal two-host LAN: enough
// stack for real sends without the full mobility topology.
func testPusher(tb testing.TB, maxPeers int, auth *mobileip.Authenticator) (*pusher, *inet.Network) {
	tb.Helper()
	net := inet.New(7)
	net.Sim.Trace.Discard()
	lan := net.AddLAN("lan", "36.1.0.0/16", netsim.SegmentOpts{Latency: 1e6})
	mh := net.AddHost("mh", lan)
	net.AddHost("peer", lan)
	net.ComputeRoutes()

	sock, err := mh.OpenUDP(ipv4.Zero, 0, func(ipv4.Addr, uint16, ipv4.Addr, []byte) {})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := pushConfig{maxPeers: maxPeers}
	cfg.fillDefaults()
	m := resolvePushMetrics(net.Sim.Metrics)
	stats := &PushStats{}
	src := mh.FirstAddr()
	p := newPusher(mh, sock, lan.Prefix.Host(100), auth, cfg, &m, stats,
		func() ipv4.Addr { return src })
	return p, net
}

func addr(last byte) ipv4.Addr { return ipv4.Addr{17, 5, 0, last} }

func TestNotePeerEvictionIsDeterministic(t *testing.T) {
	p, _ := testPusher(t, 2, nil)
	a, b, c, d, e := addr(1), addr(2), addr(3), addr(4), addr(5)

	p.notePeer(a)
	p.notePeer(b)
	if p.activePeers() != 2 || p.stats.PeersTracked != 2 {
		t.Fatalf("active=%d tracked=%d, want 2/2", p.activePeers(), p.stats.PeersTracked)
	}
	// Re-noting an existing peer refreshes, never re-installs.
	p.notePeer(a)
	if p.stats.PeersTracked != 2 {
		t.Fatalf("refresh re-installed: tracked=%d", p.stats.PeersTracked)
	}

	// LRU eviction: the least-recently-active slot loses.
	p.slots[0].lastActive = 10
	p.slots[1].lastActive = 5
	p.notePeer(c)
	if p.slots[1].peer != c || p.slots[0].peer != a {
		t.Fatalf("evicted wrong slot: [%s %s], want [a c]", p.slots[0].peer, p.slots[1].peer)
	}

	// Ties break on the lowest index — deterministic across runs.
	p.slots[0].lastActive = 7
	p.slots[1].lastActive = 7
	p.notePeer(d)
	if p.slots[0].peer != d {
		t.Fatalf("tie evicted slot holding %s, want slot 0", p.slots[0].peer)
	}

	// An inactive slot is reused before anyone is evicted.
	p.slots[1].active = false
	p.notePeer(e)
	if p.slots[1].peer != e || p.slots[0].peer != d {
		t.Fatalf("inactive slot not reused: [%s %s]", p.slots[0].peer, p.slots[1].peer)
	}
}

func TestPusherQuiesceAndRehome(t *testing.T) {
	p, net := testPusher(t, 4, nil)
	p.notePeer(addr(9))
	p.push(addr(40), 20)
	if !p.slots[0].awaiting || p.slots[0].timer == nil {
		t.Fatal("push did not arm the slot")
	}
	p.quiesce()
	if p.slots[0].awaiting {
		t.Error("quiesce left a slot awaiting")
	}
	net.RunFor(5e9) // any stray timer firing is a no-op on a quiesced slot
	if p.stats.Retransmits != 0 || p.stats.Abandons != 0 {
		t.Errorf("quiesced slot retried: retransmits=%d abandons=%d",
			p.stats.Retransmits, p.stats.Abandons)
	}
	p.rehome()
	if p.slots[0].timer != nil {
		t.Error("rehome kept a region-pinned timer handle")
	}
	// The next send lazily recreates the timer on the (new) scheduler.
	p.sendUpdate(0, 20, false)
	if p.slots[0].timer == nil {
		t.Error("send after rehome did not recreate the timer")
	}
}

// TestUpdateSendAllocs pins the binding-update send path at zero
// allocations per update beyond the raw UDP transmit. The wire image is
// built in a pooled buffer, the HMAC state is preallocated by the
// Authenticator, and the retry timer is reused via Reset — so
// everything this package adds (marshal, authenticate, slot
// bookkeeping, timer arm) must contribute nothing. The baseline is an
// identical datagram pushed through the same socket: the stack's
// per-frame transit cost (scheduler event, queued frame clone) is
// shared by every protocol in the repo and is pinned by netsim's own
// suite, not here.
func TestUpdateSendAllocs(t *testing.T) {
	p, net := testPusher(t, 4, mobileip.NewAuthenticator(0x524f, []byte("alloc-pin-key-0123456789abcdef00")))
	p.notePeer(addr(50))
	p.careOf = addr(40)
	for i := 0; i < 300; i++ {
		p.sendUpdate(0, 20, true) // warm pools, queue capacity, ARP
	}
	net.RunFor(30e9)

	// Baseline: the same wire bytes through the same socket, no pusher.
	img := BindingUpdate{Lifetime: 20, Home: p.home, CareOf: p.careOf, ID: 1}
	src, peer := p.srcAddr(), p.slots[0].peer
	base := testing.AllocsPerRun(200, func() {
		buf := netsim.GetBuf()
		b := img.AppendMarshal(buf.B)
		b = p.auth.AppendAuth(b)
		_ = p.sock.SendToFrom(src, peer, udp.PortBindingUpdate, b)
		netsim.PutBuf(buf)
	})
	full := testing.AllocsPerRun(200, func() { p.sendUpdate(0, 20, true) })
	if full > base+0.1 {
		t.Errorf("binding-update send allocates %.3f objects/op over the %.3f transmit baseline, want 0",
			full-base, base)
	}
	// The routeopt-owned halves are individually allocation-free.
	if avg := testing.AllocsPerRun(200, func() {
		buf := netsim.GetBuf()
		b := img.AppendMarshal(buf.B)
		_ = p.auth.AppendAuth(b)
		netsim.PutBuf(buf)
	}); avg != 0 {
		t.Errorf("marshal+authenticate allocates %.3f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { p.armRetry(0) }); avg != 0 {
		t.Errorf("retry-timer arm allocates %.3f objects/op, want 0", avg)
	}
}

func TestPushSkipsInactiveSlots(t *testing.T) {
	p, _ := testPusher(t, 4, nil)
	p.notePeer(addr(1))
	p.notePeer(addr(2))
	p.slots[0].active = false
	p.push(addr(40), 20)
	if p.stats.UpdatesSent != 1 {
		t.Fatalf("sent %d updates with one inactive slot, want 1", p.stats.UpdatesSent)
	}
	if !p.slots[1].awaiting || p.slots[0].awaiting {
		t.Error("wrong slot armed")
	}
}

// TestForgedAckIgnored: under an association, an unauthenticated (or
// mismatched) ack must not stop retransmission — a forged nack would
// otherwise silently sever the push channel.
func TestForgedAckIgnored(t *testing.T) {
	auth := mobileip.NewAuthenticator(0x524f, []byte("forged-ack-key-0123456789abcdef0"))
	p, _ := testPusher(t, 4, auth)
	p.notePeer(addr(1))
	p.push(addr(40), 20)
	id := p.slots[0].awaitingID

	forged := BindingAck{Code: AckDeniedAuthFailed, Home: p.home, ID: id}
	p.handleAck(addr(1), forged, false, forged.Marshal())
	if !p.slots[0].awaiting || !p.slots[0].active {
		t.Fatal("unauthenticated nack stopped the push")
	}
	if p.stats.Nacks != 0 {
		t.Fatalf("nacks = %d", p.stats.Nacks)
	}

	// A properly signed ack from the wrong peer, or with a stale ID,
	// matches no slot and is ignored.
	ok := BindingAck{Code: AckAccepted, Home: p.home, ID: id}
	p.handleAck(addr(9), ok, true, auth.AppendAuth(ok.Marshal()))
	stale := BindingAck{Code: AckAccepted, Home: p.home, ID: id - 1}
	p.handleAck(addr(1), stale, true, auth.AppendAuth(stale.Marshal()))
	if !p.slots[0].awaiting || p.stats.Acks != 0 {
		t.Fatal("mismatched ack matched a slot")
	}

	// The genuine ack lands.
	p.handleAck(addr(1), ok, true, auth.AppendAuth(ok.Marshal()))
	if p.slots[0].awaiting || p.stats.Acks != 1 {
		t.Fatalf("genuine ack not processed: awaiting=%v acks=%d", p.slots[0].awaiting, p.stats.Acks)
	}
}

func TestOnRetryAfterResolutionIsNoop(t *testing.T) {
	p, _ := testPusher(t, 4, nil)
	p.notePeer(addr(1))
	p.push(addr(40), 20)
	p.slots[0].awaiting = false // ack landed; a straggler timer fires anyway
	p.onRetry(0)
	if p.stats.Retransmits != 0 || p.stats.Abandons != 0 {
		t.Fatalf("resolved slot retried: %+v", *p.stats)
	}
}

// TestReceiverCapsLifetime: the granted TTL (echoed in the ack) is
// bounded by the receiver's policy, whatever the sender asked for.
func TestReceiverCapsLifetime(t *testing.T) {
	net := inet.New(7)
	lan := net.AddLAN("lan", "17.5.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	chHost := net.AddHost("ch", lan)
	sender := net.AddHost("sender", lan)
	net.ComputeRoutes()

	c := mobileip.NewCorrespondent(chHost, nil, mobileip.CorrespondentConfig{
		CanDecapsulate: true, MobileAware: true,
	})
	r, err := NewReceiver(c, ReceiverConfig{MaxLifetime: 5})
	if err != nil {
		t.Fatal(err)
	}
	var granted uint16
	sock, err := sender.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		if a, _, _, ok := ParseAck(payload); ok {
			granted = a.Lifetime
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	u := BindingUpdate{Lifetime: 600, Home: addr(1), CareOf: addr(2), ID: 1}
	_ = sock.SendTo(chHost.FirstAddr(), 435, u.Marshal())
	net.RunFor(1e9)
	if granted != 5 {
		t.Fatalf("granted lifetime = %d, want capped 5", granted)
	}
	if r.Stats.Accepted != 1 {
		t.Fatalf("accepted = %d", r.Stats.Accepted)
	}
}
