package routeopt

import (
	"fmt"

	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// RegionalAgentConfig tunes a regional gateway agent.
type RegionalAgentConfig struct {
	// HomeAgent is where reverse-tunneled (Out-IE) traffic from the
	// metro's mobile hosts is relayed onward.
	HomeAgent ipv4.Addr
	// Codec selects tunnel encapsulation (default IPIP). It must match
	// what the home agent and the metro's mobile nodes use.
	Codec encap.Codec
	// MaxLifetime caps granted regional registration lifetimes
	// (seconds; 0 = grant what was asked).
	MaxLifetime uint16
	// RequireAuth refuses regional registrations for homes with no
	// provisioned association.
	RequireAuth bool
}

// RegionalAgentStats counts gateway activity.
type RegionalAgentStats struct {
	Registrations   uint64
	Deregistrations uint64
	Denied          uint64
	DownRelayed     uint64 // HA→MN tunnels re-tunneled to the current cell
	UpRelayed       uint64 // MN→HA reverse tunnels relayed onward
	Expired         uint64 // lazily-expired bindings dropped at lookup
	NoBinding       uint64 // tunnels arriving for an unknown home
}

// regBinding is one regional binding. Expiry is lazy — checked at every
// lookup against vtime — so the agent needs no per-binding timers and a
// metro-wide handoff storm costs zero scheduler work beyond the
// registrations themselves.
type regBinding struct {
	careOf    ipv4.Addr
	lastID    uint64
	expiresAt vtime.Time
}

// regionalAuth is one provisioned association at the gateway.
type regionalAuth struct {
	auth   *mobileip.Authenticator
	window mobileip.ReplayWindow
}

// RegionalAgent is the hierarchical tier's gateway foreign agent: it
// aggregates a metro's per-cell attachment points behind one stable
// care-of address. The home agent tunnels to the gateway; the gateway
// re-tunnels to whatever cell the mobile host is in right now. An
// intra-metro handoff therefore touches only the gateway's table — the
// home uplink never sees it.
//
// The registration protocol is the paper's own (mobileip.Request/Reply
// on UDP 434, with the same authentication extension); only the
// HomeAgent field names the gateway instead of the real home agent.
type RegionalAgent struct {
	host *stack.Host
	addr ipv4.Addr
	cfg  RegionalAgentConfig
	sock *stack.UDPSocket

	// table maps home addresses to regional bindings; auth maps them to
	// provisioned associations. Point lookups only; never iterated.
	table map[ipv4.Addr]*regBinding
	auth  map[ipv4.Addr]*regionalAuth

	// OnRegister, when non-nil, observes every accepted regional
	// (re-)registration. The fleet's handoff bookkeeping hangs here.
	OnRegister func(home, careOf ipv4.Addr)

	Stats RegionalAgentStats

	// Metric instruments, resolved once at construction.
	reg       *metrics.Registry
	bindGauge *metrics.Gauge
	mRegs     *metrics.Counter
	mDown     *metrics.Counter
	mUp       *metrics.Counter
}

// NewRegionalAgent starts a gateway agent on host; addr is its stable
// regional care-of address (one of the host's own).
func NewRegionalAgent(host *stack.Host, addr ipv4.Addr, cfg RegionalAgentConfig) (*RegionalAgent, error) {
	if cfg.Codec == nil {
		cfg.Codec = encap.IPIP{}
	}
	// Count tunnel work under the "gfa" role alongside the registry's
	// global Encaps/Decaps totals.
	cfg.Codec = encap.Instrument(cfg.Codec, host.Sim().Metrics, "gfa")
	reg := host.Sim().Metrics
	g := &RegionalAgent{
		host: host, addr: addr, cfg: cfg,
		table:     make(map[ipv4.Addr]*regBinding),
		auth:      make(map[ipv4.Addr]*regionalAuth),
		reg:       reg,
		bindGauge: reg.Gauge("gfa/bindings"),
		mRegs:     reg.Counter("gfa/registrations"),
		mDown:     reg.Counter("gfa/down_relayed"),
		mUp:       reg.Counter("gfa/up_relayed"),
	}
	sock, err := host.OpenUDP(ipv4.Zero, udp.PortRegistration, g.handleRegistration)
	if err != nil {
		return nil, fmt.Errorf("routeopt: regional agent: %w", err)
	}
	g.sock = sock
	host.Handle(cfg.Codec.Proto(), g.handleTunneled)
	return g, nil
}

// Host returns the gateway's host.
func (g *RegionalAgent) Host() *stack.Host { return g.host }

// Addr returns the stable regional care-of address.
func (g *RegionalAgent) Addr() ipv4.Addr { return g.addr }

// ProvisionKey installs the mobility association for a home address,
// mirroring the home agent's per-home provisioning.
func (g *RegionalAgent) ProvisionKey(home ipv4.Addr, spi uint32, key []byte) {
	g.auth[home] = &regionalAuth{auth: mobileip.NewAuthenticator(spi, key)}
}

// lookup returns home's live regional binding, lazily expiring it.
func (g *RegionalAgent) lookup(home ipv4.Addr) *regBinding {
	b := g.table[home]
	if b == nil {
		return nil
	}
	if g.host.Sched().Now() > b.expiresAt {
		delete(g.table, home)
		g.bindGauge.Set(int64(len(g.table)))
		g.Stats.Expired++
		return nil
	}
	return b
}

// handleRegistration serves the regional registration protocol on UDP
// 434 — the same wire messages as the home agent's, addressed to the
// gateway.
func (g *RegionalAgent) handleRegistration(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	req, _, hasAuth, ok := mobileip.ParseRequest(payload)
	if !ok {
		return
	}
	reply := mobileip.Reply{
		Code:      mobileip.CodeAccepted,
		Lifetime:  req.Lifetime,
		Home:      req.Home,
		HomeAgent: g.addr,
		ID:        req.ID,
	}
	if g.cfg.MaxLifetime > 0 && reply.Lifetime > g.cfg.MaxLifetime {
		reply.Lifetime = g.cfg.MaxLifetime
	}
	st := g.auth[req.Home]
	switch {
	case req.HomeAgent != g.addr:
		reply.Code = mobileip.CodeDeniedNotHomeAgent
	case st == nil && g.cfg.RequireAuth:
		reply.Code = mobileip.CodeDeniedAuthFailed
		g.reg.Drop(metrics.DropAuthBadMAC)
	case st != nil:
		reply.Code = g.checkAuth(st, payload, hasAuth, req.ID)
	default:
		if b := g.table[req.Home]; b != nil && req.ID <= b.lastID {
			reply.Code = mobileip.CodeDeniedStaleID
		}
	}
	if reply.Code == mobileip.CodeAccepted {
		g.admit(&req, reply.Lifetime)
	} else {
		g.Stats.Denied++
	}
	buf := netsim.GetBuf()
	rb := reply.AppendMarshal(buf.B)
	if st != nil {
		rb = st.auth.AppendAuth(rb)
	}
	_ = g.sock.SendToFrom(g.addr, src, srcPort, rb)
	netsim.PutBuf(buf)
}

// checkAuth mirrors the home agent's MAC-then-window ordering and drop
// taxonomy.
func (g *RegionalAgent) checkAuth(st *regionalAuth, payload []byte, hasAuth bool, id uint64) uint8 {
	if !hasAuth || !st.auth.Verify(payload) {
		g.reg.Drop(metrics.DropAuthBadMAC)
		return mobileip.CodeDeniedAuthFailed
	}
	switch st.window.Check(id) {
	case mobileip.ReplayDuplicate:
		g.reg.Drop(metrics.DropAuthReplay)
		return mobileip.CodeDeniedReplay
	case mobileip.ReplayStale:
		g.reg.Drop(metrics.DropAuthStaleID)
		return mobileip.CodeDeniedStaleID
	}
	return mobileip.CodeAccepted
}

// admit installs, refreshes, or clears a regional binding.
func (g *RegionalAgent) admit(req *mobileip.Request, lifetime uint16) {
	if req.IsDeregistration() {
		if g.table[req.Home] != nil {
			delete(g.table, req.Home)
			g.bindGauge.Set(int64(len(g.table)))
		}
		g.Stats.Deregistrations++
		return
	}
	b := g.table[req.Home]
	if b == nil {
		b = &regBinding{}
		g.table[req.Home] = b
		g.bindGauge.Set(int64(len(g.table)))
	}
	b.careOf = req.CareOf
	b.lastID = req.ID
	b.expiresAt = g.host.Sched().Now().Add(vtime.Duration(lifetime) * 1e9)
	g.Stats.Registrations++
	g.mRegs.Inc()
	var detail string
	if g.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("regional binding %s -> %s lifetime=%ds", req.Home, req.CareOf, lifetime)
	}
	g.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventRegister, Time: g.host.Sim().Now(), Where: g.host.Name(),
		Detail: detail,
	})
	if g.OnRegister != nil {
		g.OnRegister(req.Home, req.CareOf)
	}
}

// Close releases the registration socket (fleet cleanup). The tunnel
// pivot handler stays installed; the gateway keeps relaying whatever is
// already in flight, which is what a drain wants.
func (g *RegionalAgent) Close() { g.sock.Close() }

// CareOf returns the live regional binding for a home address.
func (g *RegionalAgent) CareOf(home ipv4.Addr) (ipv4.Addr, bool) {
	b := g.lookup(home)
	if b == nil {
		return ipv4.Zero, false
	}
	return b.careOf, true
}

// Bindings returns the number of (possibly lazily-stale) table entries.
func (g *RegionalAgent) Bindings() int { return len(g.table) }

// handleTunneled is the re-tunnel pivot, both directions:
//
//   - Down (HA→MN): the home agent tunneled to our stable address; the
//     inner destination is a registered home — re-tunnel to the cell
//     care-of address, sourced from the gateway (the mobile node
//     classifies gateway-sourced tunnels as In-IE).
//   - Up (MN→HA): a metro mobile host reverse-tunneled its Out-IE
//     traffic to us; the inner source is a registered home and the
//     outer source its current cell — relay the tunnel onward to the
//     real home agent, again sourced from the gateway (so the home
//     agent's care-of check sees the address it registered).
//
// Everything else is dropped: an open re-encapsulator would be the
// spoofing hole Section 6.1 warns about, one tier up.
func (g *RegionalAgent) handleTunneled(ifc *stack.Iface, outer ipv4.Packet) {
	inner, err := g.cfg.Codec.Decapsulate(outer)
	if err != nil {
		return
	}
	if b := g.lookup(inner.Dst); b != nil {
		g.Stats.DownRelayed++
		g.mDown.Inc()
		g.retunnel(inner, b.careOf, inner.Dst)
		return
	}
	if b := g.lookup(inner.Src); b != nil && outer.Src == b.careOf {
		g.Stats.UpRelayed++
		g.mUp.Inc()
		g.retunnel(inner, g.cfg.HomeAgent, inner.Src)
		return
	}
	g.Stats.NoBinding++
}

// retunnel re-encapsulates inner toward dst. home is the binding's home
// address, handed to home-aware codecs (compact) for header elision.
func (g *RegionalAgent) retunnel(inner ipv4.Packet, dst, home ipv4.Addr) {
	buf := netsim.GetBuf()
	outer, err := encap.AppendEncapHome(g.cfg.Codec, inner, g.addr, dst, home, buf.B)
	if err != nil {
		netsim.PutBuf(buf)
		return
	}
	var detail string
	if g.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("retunnel %s -> %s: inner %s > %s", g.addr, dst, inner.Src, inner.Dst)
	}
	g.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventEncap, Time: g.host.Sim().Now(), Where: g.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = g.host.Resubmit(outer)
	netsim.PutBuf(buf)
}
