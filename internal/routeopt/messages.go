// Package routeopt is the route-optimization tier layered over
// internal/mobileip, reproducing the three optimizations the paper's
// Section 8 leaves as future work and the Route Optimization drafts of
// the era ([Per96b] lineage) specify:
//
//   - Pushed binding updates: on handoff the mobile node (or its home
//     agent, configurably) tells active correspondents the new care-of
//     address directly, instead of waiting for the home agent's ICMP
//     notice on the next triangle-routed packet. Updates are
//     authenticated with the same mobile-home association as
//     registrations, acked, and retransmitted a bounded number of
//     times; a correspondent whose cached binding expires or that nacks
//     an update simply falls back to In-IE triangle routing — a stale
//     cache degrades to correctness, never to a black hole.
//   - Compact encapsulation: internal/encap's route-opt header
//     compression option (encap.Compact) plus the per-mode
//     bytes-on-wire accounting in internal/metrics that lets E17 report
//     header overhead per (Out, In) mode pair.
//   - Hierarchical local registration: a regional gateway agent
//     (RegionalAgent) aggregates the per-cell attachment points of one
//     metro. The home agent sees one stable regional care-of address;
//     intra-metro handoffs register with the regional agent only
//     (LocalRegistrar) and never traverse the home uplink.
//
// Everything here follows the repo's determinism contract: vtime only,
// per-entity state, no map iteration on hot paths, pooled buffers on
// send paths.
package routeopt

import (
	"encoding/binary"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

// Binding-update message types (UDP port 435). The numbers continue the
// registration protocol's type space without colliding with it, so a
// misdelivered datagram parses as neither.
const (
	TypeBindingUpdate uint8 = 16
	TypeBindingAck    uint8 = 17
)

// Binding-acknowledgement codes. Denials reuse the registration
// protocol's code points so traces and metrics tell one story.
const (
	AckAccepted          uint8 = 0
	AckDeniedAuthFailed  uint8 = 131 // authenticator missing, malformed, or MAC mismatch
	AckDeniedStaleID     uint8 = 133 // identification behind the replay window
	AckDeniedReplay      uint8 = 134 // identification already accepted inside the window
	AckDeniedUnknownHome uint8 = 136 // receiver holds no association for this home
)

// BindingUpdate tells a correspondent where a mobile host is now.
// Lifetime zero with CareOf equal to Home revokes the cached binding
// (the host went home).
type BindingUpdate struct {
	Flags    uint8
	Lifetime uint16 // cache TTL, seconds
	Home     ipv4.Addr
	CareOf   ipv4.Addr
	ID       uint64 // matches acks to updates; replay ordering
}

const bindingUpdateLen = 1 + 1 + 2 + 4 + 4 + 8

// Marshal serializes the update.
func (u *BindingUpdate) Marshal() []byte {
	return u.AppendMarshal(make([]byte, 0, bindingUpdateLen))
}

// AppendMarshal appends the serialized update to dst and returns the
// extended slice — the allocation-free form used on the push path.
func (u *BindingUpdate) AppendMarshal(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, bindingUpdateLen)...)
	b := dst[n:]
	b[0] = TypeBindingUpdate
	b[1] = u.Flags
	binary.BigEndian.PutUint16(b[2:], u.Lifetime)
	copy(b[4:8], u.Home[:])
	copy(b[8:12], u.CareOf[:])
	binary.BigEndian.PutUint64(b[12:], u.ID)
	return dst
}

// Unmarshal decodes a binding update in place. Exactly bindingUpdateLen
// bytes are required — messages that may carry a trailing authentication
// extension go through ParseUpdate, mirroring the registration
// protocol's strict-length contract (no unauthenticated trailing bytes).
func (u *BindingUpdate) Unmarshal(b []byte) bool {
	if len(b) != bindingUpdateLen || b[0] != TypeBindingUpdate {
		return false
	}
	u.Flags = b[1]
	u.Lifetime = binary.BigEndian.Uint16(b[2:])
	copy(u.Home[:], b[4:8])
	copy(u.CareOf[:], b[8:12])
	u.ID = binary.BigEndian.Uint64(b[12:])
	return true
}

// IsRevocation reports whether the update clears the cached binding.
func (u *BindingUpdate) IsRevocation() bool { return u.Lifetime == 0 }

// BindingAck acknowledges (or refuses) a binding update.
type BindingAck struct {
	Code     uint8
	Lifetime uint16 // lifetime actually granted by the receiver
	Home     ipv4.Addr
	ID       uint64
}

const bindingAckLen = 1 + 1 + 2 + 4 + 8

// Marshal serializes the ack.
func (a *BindingAck) Marshal() []byte {
	return a.AppendMarshal(make([]byte, 0, bindingAckLen))
}

// AppendMarshal appends the serialized ack to dst and returns the
// extended slice.
func (a *BindingAck) AppendMarshal(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, bindingAckLen)...)
	b := dst[n:]
	b[0] = TypeBindingAck
	b[1] = a.Code
	binary.BigEndian.PutUint16(b[2:], a.Lifetime)
	copy(b[4:8], a.Home[:])
	binary.BigEndian.PutUint64(b[8:], a.ID)
	return dst
}

// Unmarshal decodes an ack in place; strict length, see
// BindingUpdate.Unmarshal.
func (a *BindingAck) Unmarshal(b []byte) bool {
	if len(b) != bindingAckLen || b[0] != TypeBindingAck {
		return false
	}
	a.Code = b[1]
	a.Lifetime = binary.BigEndian.Uint16(b[2:])
	copy(a.Home[:], b[4:8])
	a.ID = binary.BigEndian.Uint64(b[8:])
	return true
}

// ParseUpdate decodes a binding-update datagram that may carry a
// trailing mobileip authentication extension. ok is true only for
// exactly the base length (hasAuth false) or base+extension with a
// well-formed extension (hasAuth true), so an accepted message's MAC
// provably covers every byte that arrived.
func ParseUpdate(b []byte) (u BindingUpdate, ext mobileip.AuthExt, hasAuth bool, ok bool) {
	switch len(b) {
	case bindingUpdateLen:
	case bindingUpdateLen + mobileip.AuthExtLen:
		if !ext.Unmarshal(b[bindingUpdateLen:]) {
			return u, ext, false, false
		}
		hasAuth = true
	default:
		return u, ext, false, false
	}
	if !u.Unmarshal(b[:bindingUpdateLen]) {
		return u, ext, false, false
	}
	return u, ext, hasAuth, true
}

// ParseAck is ParseUpdate's counterpart for acknowledgements: acks from
// a receiver holding the association are authenticated too, so a forged
// nack cannot silently stop the updater's retransmissions.
func ParseAck(b []byte) (a BindingAck, ext mobileip.AuthExt, hasAuth bool, ok bool) {
	switch len(b) {
	case bindingAckLen:
	case bindingAckLen + mobileip.AuthExtLen:
		if !ext.Unmarshal(b[bindingAckLen:]) {
			return a, ext, false, false
		}
		hasAuth = true
	default:
		return a, ext, false, false
	}
	if !a.Unmarshal(b[:bindingAckLen]) {
		return a, ext, false, false
	}
	return a, ext, hasAuth, true
}
