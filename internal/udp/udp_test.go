package udp

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

var (
	src = ipv4.MustParseAddr("10.0.0.1")
	dst = ipv4.MustParseAddr("10.0.0.2")
)

func TestRoundTrip(t *testing.T) {
	d := Datagram{SrcPort: 4321, DstPort: 53, Payload: []byte("query")}
	b, err := d.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen+5 {
		t.Fatalf("length %d", len(b))
	}
	got, err := Unmarshal(src, dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != d.SrcPort || got.DstPort != d.DstPort || !bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestChecksumBindsAddresses(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("x")}
	b, _ := d.Marshal(src, dst)
	// Same bytes presented as if from a different source must fail: the
	// pseudo-header protects against exactly the address-rewriting
	// confusion the paper's modes must avoid.
	other := ipv4.MustParseAddr("10.0.0.9")
	if _, err := Unmarshal(other, dst, b); err == nil {
		t.Error("wrong pseudo-header accepted")
	}
}

func TestZeroChecksumAccepted(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("nochecksum")}
	b, _ := d.Marshal(src, dst)
	b[6], b[7] = 0, 0 // checksum disabled per RFC 768
	if _, err := Unmarshal(src, dst, b); err != nil {
		t.Errorf("zero checksum rejected: %v", err)
	}
}

func TestCorruptionRejected(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("payload!")}
	b, _ := d.Marshal(src, dst)
	b[HeaderLen] ^= 0xff
	if _, err := Unmarshal(src, dst, b); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestLengthValidation(t *testing.T) {
	if _, err := Unmarshal(src, dst, []byte{0, 1, 0}); err == nil {
		t.Error("truncated accepted")
	}
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("abc")}
	b, _ := d.Marshal(src, dst)
	binary.BigEndian.PutUint16(b[4:], 4) // below header length
	if _, err := Unmarshal(src, dst, b); err == nil {
		t.Error("bad length accepted")
	}
	b2, _ := d.Marshal(src, dst)
	binary.BigEndian.PutUint16(b2[4:], uint16(len(b2)+5))
	if _, err := Unmarshal(src, dst, b2); err == nil {
		t.Error("overlong length accepted")
	}
}

func TestLengthTrailingBytesIgnored(t *testing.T) {
	// IP may deliver padding after the datagram; the length field rules.
	d := Datagram{SrcPort: 9, DstPort: 10, Payload: []byte("data")}
	b, _ := d.Marshal(src, dst)
	padded := append(b, 0, 0, 0)
	got, err := Unmarshal(src, dst, padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestOversizeRejected(t *testing.T) {
	d := Datagram{Payload: make([]byte, 65536)}
	if _, err := d.Marshal(src, dst); err == nil {
		t.Error("oversize datagram accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte, s, d uint32) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		dg := Datagram{SrcPort: sp, DstPort: dp, Payload: payload}
		a, b := ipv4.AddrFromUint32(s), ipv4.AddrFromUint32(d)
		buf, err := dg.Marshal(a, b)
		if err != nil {
			return false
		}
		got, err := Unmarshal(a, b, buf)
		return err == nil && got.SrcPort == sp && got.DstPort == dp &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: make([]byte, 1400)}
	b.ReportAllocs()
	b.SetBytes(1400)
	for i := 0; i < b.N; i++ {
		if _, err := d.Marshal(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
