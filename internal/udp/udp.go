// Package udp implements the UDP wire format (RFC 768) used by the
// simulated stack: registration protocol, DNS, DHCP and application
// datagrams all ride on it.
package udp

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Datagram is a parsed UDP datagram.
type Datagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal serializes the datagram, computing the checksum over the
// pseudo-header for the given IP endpoints.
func (d *Datagram) Marshal(src, dst ipv4.Addr) ([]byte, error) {
	total := HeaderLen + len(d.Payload)
	if total > 65535 {
		return nil, fmt.Errorf("udp: datagram too large (%d bytes)", total)
	}
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:], d.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(total))
	copy(b[HeaderLen:], d.Payload)
	binary.BigEndian.PutUint16(b[6:], ipv4.TransportChecksum(src, dst, ipv4.ProtoUDP, b))
	return b, nil
}

// Unmarshal parses and validates a UDP datagram received between the given
// IP endpoints. A zero checksum (checksumming disabled by the sender) is
// accepted, per RFC 768.
func Unmarshal(src, dst ipv4.Addr, b []byte) (Datagram, error) {
	var d Datagram
	if len(b) < HeaderLen {
		return d, fmt.Errorf("udp: truncated datagram (%d bytes)", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < HeaderLen || length > len(b) {
		return d, fmt.Errorf("udp: bad length %d (have %d)", length, len(b))
	}
	if cs := binary.BigEndian.Uint16(b[6:]); cs != 0 {
		if ipv4.TransportChecksum(src, dst, ipv4.ProtoUDP, zeroChecksum(b[:length])) != cs {
			return d, fmt.Errorf("udp: checksum mismatch")
		}
	}
	d.SrcPort = binary.BigEndian.Uint16(b[0:])
	d.DstPort = binary.BigEndian.Uint16(b[2:])
	d.Payload = b[HeaderLen:length]
	return d, nil
}

func zeroChecksum(b []byte) []byte {
	c := append([]byte(nil), b...)
	c[6], c[7] = 0, 0
	return c
}

// Well-known ports used in the simulation.
const (
	PortDNS          = 53
	PortDHCPServer   = 67
	PortDHCPClient   = 68
	PortHTTP         = 80  // used by the paper's port-number heuristic
	PortRegistration = 434 // Mobile IP registration (IETF assignment)
)
