// Package udp implements the UDP wire format (RFC 768) used by the
// simulated stack: registration protocol, DNS, DHCP and application
// datagrams all ride on it.
package udp

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Datagram is a parsed UDP datagram.
type Datagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal serializes the datagram, computing the checksum over the
// pseudo-header for the given IP endpoints.
func (d *Datagram) Marshal(src, dst ipv4.Addr) ([]byte, error) {
	return d.AppendMarshal(src, dst, nil)
}

// AppendMarshal appends the serialized datagram to dst and returns the
// extended slice. Every wire byte is written explicitly, so dst may come
// from a pool with dirty spare capacity.
func (d *Datagram) AppendMarshal(src, dst ipv4.Addr, buf []byte) ([]byte, error) {
	total := HeaderLen + len(d.Payload)
	if total > 65535 {
		return buf, fmt.Errorf("udp: datagram too large (%d bytes)", total)
	}
	start := len(buf)
	if cap(buf)-start < total {
		grown := make([]byte, start, start+total)
		copy(grown, buf)
		buf = grown
	}
	b := buf[start : start+total]
	binary.BigEndian.PutUint16(b[0:], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:], d.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(total))
	b[6], b[7] = 0, 0
	copy(b[HeaderLen:], d.Payload)
	binary.BigEndian.PutUint16(b[6:], ipv4.TransportChecksum(src, dst, ipv4.ProtoUDP, b))
	return buf[:start+total], nil
}

// Unmarshal parses and validates a UDP datagram received between the given
// IP endpoints. A zero checksum (checksumming disabled by the sender) is
// accepted, per RFC 768.
func Unmarshal(src, dst ipv4.Addr, b []byte) (Datagram, error) {
	var d Datagram
	if len(b) < HeaderLen {
		return d, fmt.Errorf("udp: truncated datagram (%d bytes)", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < HeaderLen || length > len(b) {
		return d, fmt.Errorf("udp: bad length %d (have %d)", length, len(b))
	}
	if cs := binary.BigEndian.Uint16(b[6:]); cs != 0 {
		if !checksumValid(src, dst, b[:length]) {
			return d, fmt.Errorf("udp: checksum mismatch")
		}
	}
	d.SrcPort = binary.BigEndian.Uint16(b[0:])
	d.DstPort = binary.BigEndian.Uint16(b[2:])
	d.Payload = b[HeaderLen:length]
	return d, nil
}

// checksumValid verifies the transmitted checksum without copying the
// segment: in one's-complement arithmetic, the sum of the pseudo-header
// and the datagram *including* the stored checksum folds to all-ones for
// a valid segment (this also holds for the RFC 768 zero→0xffff mapping,
// since 0xffff + 0xffff folds back to 0xffff).
func checksumValid(src, dst ipv4.Addr, b []byte) bool {
	sum := ipv4.PseudoHeaderChecksum(src, dst, ipv4.ProtoUDP, len(b))
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return uint16(sum) == 0xffff
}

// Well-known ports used in the simulation.
const (
	PortDNS          = 53
	PortDHCPServer   = 67
	PortDHCPClient   = 68
	PortHTTP         = 80  // used by the paper's port-number heuristic
	PortRegistration = 434 // Mobile IP registration (IETF assignment)
	// PortBindingUpdate carries the route-optimization tier's pushed
	// correspondent binding updates (internal/routeopt); 435 is the
	// next free port after the registration protocol.
	PortBindingUpdate = 435
)
