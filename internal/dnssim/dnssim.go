// Package dnssim implements the name service of the simulation, including
// the paper's proposed mobility extension (Section 3.2): alongside normal
// A records, a name may carry a "CA" (care-of address) record, "similar to
// the current MX records", registered dynamically by a mobile host that
// is away from home but not moving frequently. A smart correspondent that
// sees both records "knows that it has the option to send packets
// directly to that temporary address".
//
// The wire format is a simplified binary encoding, not RFC 1035 — the
// reproduction needs the record semantics and the lookup round-trip, not
// DNS name compression.
package dnssim

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/assert"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// RType is a record type.
type RType uint8

// Record types.
const (
	TypeA RType = 1
	// TypeCA is the paper's extension: the temporary care-of address of
	// a mobile host, with a lifetime.
	TypeCA RType = 2
)

func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeCA:
		return "CA"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is one resource record.
type Record struct {
	Type RType
	Addr ipv4.Addr
	TTL  uint32 // seconds
}

// Message opcodes.
const (
	opQuery  uint8 = 0
	opUpdate uint8 = 1
)

// message is the wire unit (query, response, or dynamic update).
type message struct {
	id       uint16
	op       uint8
	response bool
	name     string
	records  []Record
}

// maxNameLen is the longest name the one-byte wire length field can
// carry. Resolver.send rejects longer names before a message is built, so
// by the time marshal runs the bound is an invariant.
const maxNameLen = 255

func (m *message) marshal() []byte {
	if len(m.name) > maxNameLen || len(m.records) > 255 {
		assert.Unreachable("dnssim: message exceeds wire limits (name %d bytes, %d records)",
			len(m.name), len(m.records))
	}
	b := make([]byte, 0, 8+len(m.name)+len(m.records)*9)
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], m.id)
	hdr[2] = m.op
	if m.response {
		hdr[3] = 1
	}
	b = append(b, hdr[:]...)
	b = append(b, byte(len(m.name)))
	b = append(b, m.name...)
	b = append(b, byte(len(m.records)))
	for _, r := range m.records {
		var rb [9]byte
		rb[0] = byte(r.Type)
		copy(rb[1:5], r.Addr[:])
		binary.BigEndian.PutUint32(rb[5:], r.TTL)
		b = append(b, rb[:]...)
	}
	return b
}

func parseMessage(b []byte) (message, error) {
	var m message
	if len(b) < 6 {
		return m, fmt.Errorf("dnssim: truncated message")
	}
	m.id = binary.BigEndian.Uint16(b[0:])
	m.op = b[2]
	m.response = b[3] == 1
	nameLen := int(b[4])
	if len(b) < 5+nameLen+1 {
		return m, fmt.Errorf("dnssim: truncated name")
	}
	m.name = string(b[5 : 5+nameLen])
	rest := b[5+nameLen:]
	count := int(rest[0])
	rest = rest[1:]
	if len(rest) < count*9 {
		return m, fmt.Errorf("dnssim: truncated records")
	}
	for i := 0; i < count; i++ {
		r := Record{Type: RType(rest[0]), TTL: binary.BigEndian.Uint32(rest[5:])}
		copy(r.Addr[:], rest[1:5])
		m.records = append(m.records, r)
		rest = rest[9:]
	}
	return m, nil
}

// ServerStats counts server activity.
type ServerStats struct {
	Queries  uint64
	Updates  uint64
	NotFound uint64
}

// Server is an authoritative name server with dynamic updates.
type Server struct {
	host *stack.Host
	sock *stack.UDPSocket
	zone map[string][]Record
	// caExpiry tracks CA record lifetimes.
	caExpiry map[string]*vtime.Timer

	Stats ServerStats
}

// NewServer starts a name server on host.
func NewServer(host *stack.Host) (*Server, error) {
	s := &Server{
		host:     host,
		zone:     make(map[string][]Record),
		caExpiry: make(map[string]*vtime.Timer),
	}
	sock, err := host.OpenUDP(ipv4.Zero, udp.PortDNS, s.serve)
	if err != nil {
		return nil, fmt.Errorf("dnssim: %w", err)
	}
	s.sock = sock
	return s, nil
}

// AddA installs a permanent A record.
func (s *Server) AddA(name string, addr ipv4.Addr) {
	s.zone[name] = append(s.zone[name], Record{Type: TypeA, Addr: addr, TTL: 86400})
}

// SetCA installs (or replaces) the care-of record for name with the given
// lifetime; a zero lifetime removes it. This is what a mobile host's
// dynamic update performs.
func (s *Server) SetCA(name string, addr ipv4.Addr, ttlSec uint32) {
	if t := s.caExpiry[name]; t != nil {
		t.Stop()
		delete(s.caExpiry, name)
	}
	recs := s.zone[name][:0]
	for _, r := range s.zone[name] {
		if r.Type != TypeCA {
			recs = append(recs, r)
		}
	}
	s.zone[name] = recs
	if ttlSec == 0 {
		return
	}
	s.zone[name] = append(s.zone[name], Record{Type: TypeCA, Addr: addr, TTL: ttlSec})
	s.caExpiry[name] = s.host.Sched().After(vtime.Duration(ttlSec)*1e9, func() {
		delete(s.caExpiry, name)
		s.SetCA(name, ipv4.Zero, 0)
	})
}

// Lookup returns the records for a name (server-side view, for tests).
func (s *Server) Lookup(name string) []Record { return s.zone[name] }

func (s *Server) serve(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	m, err := parseMessage(payload)
	if err != nil || m.response {
		return
	}
	switch m.op {
	case opQuery:
		s.Stats.Queries++
		recs := s.zone[m.name]
		if len(recs) == 0 {
			s.Stats.NotFound++
		}
		resp := message{id: m.id, op: opQuery, response: true, name: m.name, records: recs}
		_ = s.sock.SendToFrom(dst, src, srcPort, resp.marshal())
	case opUpdate:
		s.Stats.Updates++
		for _, r := range m.records {
			if r.Type == TypeCA {
				s.SetCA(m.name, r.Addr, r.TTL)
			}
		}
		resp := message{id: m.id, op: opUpdate, response: true, name: m.name}
		_ = s.sock.SendToFrom(dst, src, srcPort, resp.marshal())
	}
}

// Resolver is a stub resolver with retry.
type Resolver struct {
	host    *stack.Host
	server  ipv4.Addr
	sock    *stack.UDPSocket
	nextID  uint16
	pending map[uint16]*query

	// Timeout and Retries configure patience (defaults 1s, 3).
	Timeout vtime.Duration
	Retries int
}

type query struct {
	msg   message
	tries int
	timer *vtime.Timer
	done  func([]Record, error)
}

// NewResolver creates a resolver on host pointed at server.
func NewResolver(host *stack.Host, server ipv4.Addr) (*Resolver, error) {
	r := &Resolver{
		host:    host,
		server:  server,
		pending: make(map[uint16]*query),
		Timeout: vtime.Duration(1e9),
		Retries: 3,
	}
	sock, err := host.OpenUDP(ipv4.Zero, 0, r.receive)
	if err != nil {
		return nil, fmt.Errorf("dnssim: resolver: %w", err)
	}
	r.sock = sock
	return r, nil
}

// Query looks up name; done receives the records (possibly empty) or an
// error after retries are exhausted.
func (r *Resolver) Query(name string, done func([]Record, error)) {
	r.send(message{op: opQuery, name: name}, done)
}

// UpdateCA sends a dynamic update registering (or with ttl 0, clearing)
// the care-of record for name.
func (r *Resolver) UpdateCA(name string, careOf ipv4.Addr, ttlSec uint32, done func(error)) {
	r.send(message{op: opUpdate, name: name, records: []Record{{Type: TypeCA, Addr: careOf, TTL: ttlSec}}},
		func(_ []Record, err error) {
			if done != nil {
				done(err)
			}
		})
}

func (r *Resolver) send(m message, done func([]Record, error)) {
	if len(m.name) > maxNameLen {
		// A caller-supplied name is input, not an invariant: fail the
		// query instead of crashing the simulation.
		if done != nil {
			done(nil, fmt.Errorf("dnssim: name too long (%d bytes, max %d)", len(m.name), maxNameLen))
		}
		return
	}
	r.nextID++
	m.id = r.nextID
	q := &query{msg: m, done: done}
	r.pending[m.id] = q
	r.transmit(q)
}

func (r *Resolver) transmit(q *query) {
	_ = r.sock.SendTo(r.server, udp.PortDNS, q.msg.marshal())
	q.timer = r.host.Sched().After(r.Timeout, func() {
		q.tries++
		if q.tries >= r.Retries {
			delete(r.pending, q.msg.id)
			if q.done != nil {
				q.done(nil, fmt.Errorf("dnssim: query %q timed out", q.msg.name))
			}
			return
		}
		r.transmit(q)
	})
}

func (r *Resolver) receive(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	m, err := parseMessage(payload)
	if err != nil || !m.response {
		return
	}
	q, ok := r.pending[m.id]
	if !ok {
		return
	}
	delete(r.pending, m.id)
	q.timer.Stop()
	if q.done != nil {
		q.done(m.records, nil)
	}
}

// BestAddr applies the smart-correspondent preference to a record set:
// the CA record if present (direct delivery available), else the A
// record. ok is false if neither exists.
func BestAddr(recs []Record) (addr ipv4.Addr, isCareOf, ok bool) {
	var a, ca ipv4.Addr
	var hasA, hasCA bool
	for _, r := range recs {
		switch r.Type {
		case TypeA:
			a, hasA = r.Addr, true
		case TypeCA:
			ca, hasCA = r.Addr, true
		}
	}
	switch {
	case hasCA:
		return ca, true, true
	case hasA:
		return a, false, true
	default:
		return ipv4.Zero, false, false
	}
}
