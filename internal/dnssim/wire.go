package dnssim

import "fmt"

// MarshalQuery builds the wire form of a plain A/CA query for name, for
// clients that speak the protocol over their own transport (the sock
// facade's PacketConn) instead of through Resolver's callback machinery.
// The id is echoed in the response; match it with ParseResponse.
func MarshalQuery(id uint16, name string) ([]byte, error) {
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("dnssim: name too long (%d bytes, max %d)", len(name), maxNameLen)
	}
	m := message{id: id, op: opQuery, name: name}
	return m.marshal(), nil
}

// ParseResponse decodes a server response produced for MarshalQuery's
// query: the echoed id, the queried name and the records (empty when
// the name is unknown). Non-response messages are rejected so a client
// sharing a socket with other traffic can discard them.
func ParseResponse(b []byte) (id uint16, name string, recs []Record, err error) {
	m, err := parseMessage(b)
	if err != nil {
		return 0, "", nil, err
	}
	if !m.response {
		return 0, "", nil, fmt.Errorf("dnssim: not a response")
	}
	return m.id, m.name, m.records, nil
}
