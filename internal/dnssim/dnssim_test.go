package dnssim

import (
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// dnsWorld: server on LAN a, client on LAN b, router between.
func dnsWorld(t testing.TB, loss float64) (*inet.Network, *Server, *Resolver) {
	t.Helper()
	n := inet.New(3)
	a := n.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	b := n.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 1e6, LossRate: loss})
	r := n.AddRouter("r")
	n.AttachRouter(r, a)
	n.AttachRouter(r, b)
	serverHost := n.AddHost("dns", a)
	clientHost := n.AddHost("client", b)
	n.ComputeRoutes()

	srv, err := NewServer(serverHost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(clientHost, serverHost.FirstAddr())
	if err != nil {
		t.Fatal(err)
	}
	return n, srv, res
}

func TestQueryARecord(t *testing.T) {
	n, srv, res := dnsWorld(t, 0)
	addr := ipv4.MustParseAddr("36.1.1.3")
	srv.AddA("mh.example.edu", addr)

	var got []Record
	var gotErr error
	res.Query("mh.example.edu", func(recs []Record, err error) { got, gotErr = recs, err })
	n.RunFor(3e9)

	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 1 || got[0].Type != TypeA || got[0].Addr != addr {
		t.Errorf("records = %+v", got)
	}
	if srv.Stats.Queries != 1 {
		t.Errorf("server queries = %d", srv.Stats.Queries)
	}
}

func TestQueryMissingName(t *testing.T) {
	n, srv, res := dnsWorld(t, 0)
	var got []Record
	answered := false
	res.Query("nope.example.edu", func(recs []Record, err error) {
		got, answered = recs, err == nil
	})
	n.RunFor(3e9)
	if !answered {
		t.Fatal("no answer")
	}
	if len(got) != 0 {
		t.Errorf("records = %v", got)
	}
	if srv.Stats.NotFound != 1 {
		t.Errorf("notfound = %d", srv.Stats.NotFound)
	}
}

func TestCARecordLifecycle(t *testing.T) {
	n, srv, res := dnsWorld(t, 0)
	home := ipv4.MustParseAddr("36.1.1.3")
	coa := ipv4.MustParseAddr("128.9.1.4")
	srv.AddA("mh.example.edu", home)

	// Dynamic update from the "mobile host".
	var updErr error
	updated := false
	res.UpdateCA("mh.example.edu", coa, 60, func(err error) { updErr, updated = err, true })
	n.RunFor(3e9)
	if !updated || updErr != nil {
		t.Fatalf("update: %v %v", updated, updErr)
	}

	var got []Record
	res.Query("mh.example.edu", func(recs []Record, err error) { got = recs })
	n.RunFor(3e9)
	if len(got) != 2 {
		t.Fatalf("records = %+v", got)
	}
	addr, isCareOf, ok := BestAddr(got)
	if !ok || !isCareOf || addr != coa {
		t.Errorf("BestAddr = %v,%v,%v", addr, isCareOf, ok)
	}

	// The CA record expires with its TTL.
	n.RunFor(61e9)
	got = nil
	res.Query("mh.example.edu", func(recs []Record, err error) { got = recs })
	n.RunFor(3e9)
	if len(got) != 1 || got[0].Type != TypeA {
		t.Errorf("after expiry: %+v", got)
	}
}

func TestCAReplaceAndClear(t *testing.T) {
	_, srv, _ := dnsWorld(t, 0)
	home := ipv4.MustParseAddr("36.1.1.3")
	srv.AddA("mh", home)
	srv.SetCA("mh", ipv4.MustParseAddr("128.9.1.4"), 600)
	srv.SetCA("mh", ipv4.MustParseAddr("130.5.1.2"), 600) // moved again
	recs := srv.Lookup("mh")
	caCount := 0
	for _, r := range recs {
		if r.Type == TypeCA {
			caCount++
			if r.Addr != ipv4.MustParseAddr("130.5.1.2") {
				t.Errorf("stale CA: %v", r.Addr)
			}
		}
	}
	if caCount != 1 {
		t.Errorf("CA records = %d, want 1", caCount)
	}
	srv.SetCA("mh", ipv4.Zero, 0) // gone home: clear
	for _, r := range srv.Lookup("mh") {
		if r.Type == TypeCA {
			t.Error("CA record survived clear")
		}
	}
}

func TestResolverRetriesUnderLoss(t *testing.T) {
	n, srv, res := dnsWorld(t, 0.4)
	res.Retries = 8
	srv.AddA("mh", ipv4.MustParseAddr("36.1.1.3"))
	var got []Record
	var gotErr error
	done := false
	res.Query("mh", func(recs []Record, err error) { got, gotErr, done = recs, err, true })
	n.RunFor(20e9)
	if !done {
		t.Fatal("query never resolved")
	}
	if gotErr != nil {
		t.Fatalf("query failed despite retries: %v", gotErr)
	}
	if len(got) != 1 {
		t.Errorf("records = %v", got)
	}
}

func TestResolverTimesOut(t *testing.T) {
	n, _, res := dnsWorld(t, 1.0) // total loss
	var gotErr error
	done := false
	res.Query("mh", func(recs []Record, err error) { gotErr, done = err, true })
	n.RunFor(30e9)
	if !done || gotErr == nil {
		t.Errorf("expected timeout, done=%v err=%v", done, gotErr)
	}
}

func TestBestAddrFallbacks(t *testing.T) {
	a := ipv4.MustParseAddr("1.1.1.1")
	ca := ipv4.MustParseAddr("2.2.2.2")
	if addr, isCA, ok := BestAddr([]Record{{Type: TypeA, Addr: a}}); !ok || isCA || addr != a {
		t.Error("A-only")
	}
	if addr, isCA, ok := BestAddr([]Record{{Type: TypeA, Addr: a}, {Type: TypeCA, Addr: ca}}); !ok || !isCA || addr != ca {
		t.Error("CA preferred")
	}
	if _, _, ok := BestAddr(nil); ok {
		t.Error("empty set")
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeCA.String() != "CA" || RType(9).String() == "" {
		t.Error("record type strings")
	}
}

func TestQueryNameTooLong(t *testing.T) {
	_, _, res := dnsWorld(t, 0)
	long := make([]byte, maxNameLen+1)
	for i := range long {
		long[i] = 'a'
	}

	var gotErr error
	called := false
	res.Query(string(long), func(recs []Record, err error) { called, gotErr = true, err })

	// The rejection is synchronous: no packet is built, nothing is
	// pending, and the callback has already fired with an error.
	if !called {
		t.Fatal("done callback not invoked for oversized name")
	}
	if gotErr == nil {
		t.Fatal("expected an error for a name beyond the wire limit")
	}
	if len(res.pending) != 0 {
		t.Errorf("rejected query left %d pending entries", len(res.pending))
	}
}
