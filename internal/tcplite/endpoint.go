package tcplite

import (
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// connKey identifies a connection: the classic 4-tuple. The local address
// is part of the key — that is the whole point of the paper's Section 4:
// a conversation keyed to the home address survives movement, one keyed
// to a temporary care-of address does not.
type connKey struct {
	localAddr  ipv4.Addr
	localPort  uint16
	remoteAddr ipv4.Addr
	remotePort uint16
}

// Listener accepts inbound connections on a port.
type Listener struct {
	ep     *Endpoint
	port   uint16
	accept func(*Conn)
	closed bool
}

// Close stops accepting (existing connections are unaffected).
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		delete(l.ep.listeners, l.port)
	}
}

// FeedbackListener receives the Section 7.1.2 signals: original
// transmissions vs retransmissions, per remote address. Implemented by
// the mobility selector glue.
type FeedbackListener interface {
	// Retransmission reports that a segment to remote had to be resent.
	Retransmission(remote ipv4.Addr)
	// Progress reports that new data to/from remote was acknowledged
	// (the current delivery method demonstrably works).
	Progress(remote ipv4.Addr)
}

// EndpointStats aggregates transport activity on a host.
type EndpointStats struct {
	SegsSent        uint64
	SegsReceived    uint64
	Retransmissions uint64
	FastRetransmits uint64
	BadSegments     uint64
	Resets          uint64
	ConnsOpened     uint64
	ConnsAccepted   uint64
	ConnsFailed     uint64
}

// Endpoint is a host's transport layer: demultiplexer, listener table and
// connection factory. Create one per host with New.
type Endpoint struct {
	host      *stack.Host
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	ephemeral uint16
	isn       uint32 // deterministic initial sequence number source

	// Feedback, when non-nil, receives retransmission/progress signals.
	Feedback FeedbackListener

	// Config (applied to new connections).
	MSS        int            // max payload per segment (default 960)
	Window     int            // max segments in flight (default 8)
	RTO        vtime.Duration // initial retransmission timeout (default 200ms)
	MaxRetries int            // per-segment retry budget (default 8)

	Stats EndpointStats
}

// New installs a transport endpoint on the host.
func New(h *stack.Host) *Endpoint {
	ep := &Endpoint{
		host:       h,
		conns:      make(map[connKey]*Conn),
		listeners:  make(map[uint16]*Listener),
		ephemeral:  40000,
		isn:        1,
		MSS:        960,
		Window:     8,
		RTO:        vtime.Duration(200e6),
		MaxRetries: 8,
	}
	h.Handle(ipv4.ProtoTCP, ep.receive)
	return ep
}

// Host returns the owning host.
func (ep *Endpoint) Host() *stack.Host { return ep.host }

// Listen registers an accept callback for a port.
func (ep *Endpoint) Listen(port uint16, accept func(*Conn)) (*Listener, error) {
	if _, dup := ep.listeners[port]; dup {
		return nil, fmt.Errorf("tcplite: port %d already listening", port)
	}
	l := &Listener{ep: ep, port: port, accept: accept}
	ep.listeners[port] = l
	return l, nil
}

// Dial opens a connection to remote:port. localAddr selects the endpoint
// identifier: pass the zero address to let the host's routing (including
// the mobility policy) choose — exactly the decision point the paper
// describes for TCP connection setup.
func (ep *Endpoint) Dial(localAddr, remote ipv4.Addr, port uint16) (*Conn, error) {
	if localAddr.IsZero() {
		// Resolve with transport context: the mobility policy's §7.1.2
		// port heuristic keys off the destination port, so TCP setup
		// must present it exactly as an unbound UDP send does.
		localAddr = ep.host.SourceForDestinationPort(remote, ipv4.ProtoTCP, port)
		if localAddr.IsZero() {
			return nil, fmt.Errorf("tcplite: no source address for %s", remote)
		}
	}
	key := connKey{localAddr, ep.allocPort(), remote, port}
	if _, dup := ep.conns[key]; dup {
		return nil, fmt.Errorf("tcplite: connection already exists: %+v", key)
	}
	c := newConn(ep, key, false)
	ep.conns[key] = c
	ep.Stats.ConnsOpened++
	c.sendSYN()
	return c, nil
}

func (ep *Endpoint) allocPort() uint16 {
	for {
		ep.ephemeral++
		if ep.ephemeral < 40000 {
			ep.ephemeral = 40000
		}
		inUse := false
		//mob4x4vet:allow mapiter membership scan; only a boolean escapes the loop
		for k := range ep.conns {
			if k.localPort == ep.ephemeral {
				inUse = true
				break
			}
		}
		if !inUse {
			return ep.ephemeral
		}
	}
}

func (ep *Endpoint) nextISN() uint32 {
	ep.isn += 64000
	return ep.isn
}

// receive demultiplexes inbound segments.
func (ep *Endpoint) receive(ifc *stack.Iface, pkt ipv4.Packet) {
	seg, err := parseSegment(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		ep.Stats.BadSegments++
		return
	}
	ep.Stats.SegsReceived++
	key := connKey{pkt.Dst, seg.dstPort, pkt.Src, seg.srcPort}
	if c, ok := ep.conns[key]; ok {
		c.handle(seg)
		return
	}
	// New connection?
	if seg.has(flagSYN) && !seg.has(flagACK) {
		if l, ok := ep.listeners[seg.dstPort]; ok && !l.closed {
			c := newConn(ep, key, true)
			ep.conns[key] = c
			ep.Stats.ConnsAccepted++
			// The accept callback runs before the SYN is processed so a
			// consumer can refuse the connection (Abort) before any
			// SYN|ACK goes out — the way a kernel's bound-socket filter
			// rejects ahead of answering. handle on an aborted (closed)
			// conn is a no-op.
			if l.accept != nil {
				l.accept(c)
			}
			c.handle(seg)
			return
		}
	}
	// No home for this segment: RST unless it was itself a reset.
	if !seg.has(flagRST) {
		ep.sendRaw(key.localAddr, key.remoteAddr, segment{
			srcPort: seg.dstPort, dstPort: seg.srcPort,
			seq: seg.ack, ack: seg.seq + uint32(len(seg.payload)), flags: flagRST | flagACK,
		})
	}
}

func (ep *Endpoint) sendRaw(src, dst ipv4.Addr, seg segment) {
	ep.Stats.SegsSent++
	// Marshal into a pooled scratch buffer; SendIP copies the payload
	// before returning, so it can be recycled immediately.
	buf := netsim.GetBuf()
	buf.B = seg.appendMarshal(src, dst, buf.B)
	_ = ep.host.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: dst},
		Payload: buf.B,
	})
	netsim.PutBuf(buf)
}

// ConnCount reports live connections (debug/tests).
func (ep *Endpoint) ConnCount() int { return len(ep.conns) }
