package tcplite

import (
	"bytes"
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

var (
	segSrc = ipv4.MustParseAddr("10.0.0.1")
	segDst = ipv4.MustParseAddr("10.0.0.2")
)

func TestSegmentRoundTrip(t *testing.T) {
	s := segment{
		srcPort: 40001, dstPort: 23,
		seq: 0xdeadbeef, ack: 0xcafebabe,
		flags: flagACK | flagPSH, window: 8,
		payload: []byte("keystroke"),
	}
	got, err := parseSegment(segSrc, segDst, s.marshal(segSrc, segDst))
	if err != nil {
		t.Fatal(err)
	}
	if got.srcPort != s.srcPort || got.dstPort != s.dstPort ||
		got.seq != s.seq || got.ack != s.ack ||
		got.flags != s.flags || got.window != s.window {
		t.Errorf("fields: %+v", got)
	}
	if !bytes.Equal(got.payload, s.payload) {
		t.Error("payload mismatch")
	}
}

func TestSegmentChecksumBindsAddresses(t *testing.T) {
	s := segment{srcPort: 1, dstPort: 2, flags: flagSYN}
	b := s.marshal(segSrc, segDst)
	// A different pseudo-header must fail: this is exactly why the
	// broken grid cells cannot carry TCP — a reply keyed to a different
	// address cannot even checksum correctly at the receiver.
	if _, err := parseSegment(ipv4.MustParseAddr("10.9.9.9"), segDst, b); err == nil {
		t.Error("segment accepted under the wrong source address")
	}
}

func TestSegmentCorruptionRejected(t *testing.T) {
	s := segment{srcPort: 1, dstPort: 2, flags: flagACK, payload: []byte("data")}
	good := s.marshal(segSrc, segDst)
	for i := range good {
		b := append([]byte(nil), good...)
		b[i] ^= 0x10
		if _, err := parseSegment(segSrc, segDst, b); err == nil {
			// A flip in the data-offset upper nibble could still parse
			// if... no: any flip must break the checksum or the offset
			// bounds.
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestSegmentTruncatedRejected(t *testing.T) {
	if _, err := parseSegment(segSrc, segDst, make([]byte, 10)); err == nil {
		t.Error("truncated segment accepted")
	}
	s := segment{flags: flagSYN}
	b := s.marshal(segSrc, segDst)
	b[12] = 15 << 4 // data offset beyond segment
	if _, err := parseSegment(segSrc, segDst, b); err == nil {
		t.Error("bad offset accepted")
	}
}

func TestSegmentString(t *testing.T) {
	s := segment{srcPort: 1, dstPort: 2, flags: flagSYN | flagACK}
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestSegmentRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 30000 {
			payload = payload[:30000]
		}
		s := segment{
			srcPort: sp, dstPort: dp, seq: seq, ack: ack,
			flags: flags, window: 4, payload: payload,
		}
		got, err := parseSegment(segSrc, segDst, s.marshal(segSrc, segDst))
		return err == nil && got.seq == seq && got.ack == ack &&
			got.flags == flags && bytes.Equal(got.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b   uint32
		lt, le bool
	}{
		{0, 1, true, true},
		{1, 0, false, false},
		{5, 5, false, true},
		// Wraparound: 0xffffffff is "before" 0 in sequence space.
		{0xffffffff, 0, true, true},
		{0, 0xffffffff, false, false},
		{0xfffffff0, 0x10, true, true},
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt {
			t.Errorf("seqLT(%#x,%#x) = %v", c.a, c.b, !c.lt)
		}
		if seqLE(c.a, c.b) != c.le {
			t.Errorf("seqLE(%#x,%#x) = %v", c.a, c.b, !c.le)
		}
	}
}

func TestSeqOrderingProperty(t *testing.T) {
	// Within half the sequence space, seqLT agrees with a+delta logic.
	f := func(a uint32, deltaRaw uint32) bool {
		delta := deltaRaw % (1 << 30) // well under half the space
		if delta == 0 {
			return !seqLT(a, a) && seqLE(a, a)
		}
		b := a + delta
		return seqLT(a, b) && !seqLT(b, a) && seqLE(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{StateSynSent, StateSynReceived, StateEstablished,
		StateFinWait, StateCloseWait, StateLastAck, StateClosed} {
		if s.String() == "" {
			t.Errorf("state %d has no string", s)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should render")
	}
}
