package tcplite_test

import (
	"errors"
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/tcplite"
)

// TestConnTimeoutUnder100PercentLoss pins the finite retransmission
// budget: with every client-side frame lost, the SYN exchange must not
// back off forever — after MaxRetries consecutive RTOs the connection
// tears down and OnError surfaces ErrConnTimeout (wrapped, matchable
// with errors.Is).
func TestConnTimeoutUnder100PercentLoss(t *testing.T) {
	n, ch, sh := pair(t, 1.0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {}); err != nil {
		t.Fatal(err)
	}

	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	conn.OnError = func(e error) { gotErr = e }

	// Default budget: RTO 200ms doubling to a 10s cap over 8 retries
	// (~42s worst case); 90s of virtual time covers it with margin.
	n.RunFor(90e9)

	if gotErr == nil {
		t.Fatal("expected a timeout error under 100% loss")
	}
	if !errors.Is(gotErr, tcplite.ErrConnTimeout) {
		t.Errorf("OnError = %v, want errors.Is(..., ErrConnTimeout)", gotErr)
	}
	if cep.Stats.ConnsFailed != 1 {
		t.Errorf("ConnsFailed = %d, want 1", cep.Stats.ConnsFailed)
	}
	if cep.ConnCount() != 0 {
		t.Errorf("client still tracks %d connections after teardown", cep.ConnCount())
	}
}
