package tcplite

import (
	"errors"
	"fmt"
	"net"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/vtime"
)

// ErrConnTimeout is the sentinel delivered (wrapped) through Conn.OnError
// when a connection exhausts its retransmission budget: MaxRetries
// consecutive RTOs without a single acknowledgement. Match it with
// errors.Is.
var ErrConnTimeout = errors.New("connection timed out")

// ErrClosed is the stable sentinel for operations on a connection that
// was closed locally. It wraps net.ErrClosed, so transport consumers
// (the sock facade) satisfy the standard library's contract with a plain
// errors.Is(err, net.ErrClosed).
var ErrClosed = fmt.Errorf("tcplite: %w", net.ErrClosed)

// State is a connection state (simplified TCP state machine).
type State int

// Connection states.
const (
	StateSynSent State = iota
	StateSynReceived
	StateEstablished
	StateFinWait   // we closed, awaiting peer FIN/ACK
	StateCloseWait // peer closed, we may still send
	StateLastAck   // we closed after peer; awaiting final ACK
	StateClosed
	// StateClosing is the simultaneous-close state (RFC 793 CLOSING):
	// our FIN is in flight and the peer's FIN already arrived; we await
	// the ack of ours before lingering in StateTimeWait.
	StateClosing
	// StateTimeWait lingers after both FINs are exchanged so a
	// retransmitted peer FIN (our ACK was lost) is re-acknowledged
	// instead of answered with a RST. The connection tears down
	// TimeWaitLinger later.
	StateTimeWait
)

// TimeWaitLinger is how long a connection stays in StateTimeWait before
// releasing its 4-tuple — long enough to cover the peer's first FIN
// retransmissions (its RTO starts at Endpoint.RTO and backs off).
const TimeWaitLinger = vtime.Duration(1e9)

func (s State) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateSynReceived:
		return "syn-received"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateCloseWait:
		return "close-wait"
	case StateLastAck:
		return "last-ack"
	case StateClosed:
		return "closed"
	case StateClosing:
		return "closing"
	case StateTimeWait:
		return "time-wait"
	default:
		return "state(?)"
	}
}

// unacked is one segment awaiting acknowledgement.
type unacked struct {
	seq     uint32
	payload []byte
	fin     bool
	syn     bool
}

// Conn is one reliable connection. All callbacks run on the simulation's
// event loop; do not block in them.
type Conn struct {
	ep    *Endpoint
	key   connKey
	state State

	// Send side.
	sndUna    uint32 // oldest unacknowledged
	sndNxt    uint32 // next sequence to send
	sendBuf   []byte // not yet segmented
	inflight  []unacked
	finQueued bool
	finSent   bool
	rto       vtime.Duration
	rtoTimer  *vtime.Timer
	retries   int
	dupAcks   int

	// RTT estimation (RFC 6298 style: SRTT/RTTVAR with Karn's rule —
	// samples only from segments never retransmitted).
	srtt                    vtime.Duration
	rttvar                  vtime.Duration
	hasRTT                  bool
	timedSeq                uint32     // sequence whose ACK will complete the sample
	timedAt                 vtime.Time // when it was sent
	timing                  bool
	sawRetransmitSinceTimed bool

	// Receive side.
	rcvNxt uint32
	ooo    map[uint32][]byte // out-of-order segments by seq

	// Callbacks.
	OnEstablished func()
	OnData        func([]byte)
	OnClose       func()      // orderly close by the peer (EOF)
	OnError       func(error) // reset or timeout; connection is dead
	// OnDrain fires whenever an acknowledgement frees send-side space
	// (sndUna advanced). Flow-controlled writers (the sock facade's
	// bounded write buffer) use it to resume blocked writes.
	OnDrain func()

	// BytesIn/BytesOut count delivered payload.
	BytesIn, BytesOut uint64
}

func newConn(ep *Endpoint, key connKey, passive bool) *Conn {
	c := &Conn{
		ep:    ep,
		key:   key,
		state: StateSynSent,
		rto:   ep.RTO,
		ooo:   make(map[uint32][]byte),
	}
	if passive {
		c.state = StateSynReceived
	}
	isn := ep.nextISN()
	c.sndUna, c.sndNxt = isn, isn
	return c
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalAddr returns the endpoint identifier chosen at setup.
func (c *Conn) LocalAddr() ipv4.Addr { return c.key.localAddr }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() ipv4.Addr { return c.key.remoteAddr }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemotePort returns the peer port.
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.state == StateEstablished || c.state == StateCloseWait }

// Write queues data for reliable delivery. Writing on a closed or
// closing connection returns an error matching both ErrClosed and
// net.ErrClosed under errors.Is.
func (c *Conn) Write(data []byte) error {
	switch c.state {
	case StateClosed, StateFinWait, StateLastAck, StateClosing, StateTimeWait:
		return fmt.Errorf("write on %v connection: %w", c.state, ErrClosed)
	}
	if c.finQueued {
		return fmt.Errorf("write after close: %w", ErrClosed)
	}
	c.sendBuf = append(c.sendBuf, data...)
	c.pump()
	return nil
}

// PendingOut reports the payload bytes queued or in flight — the send
// backlog a flow-controlled writer bounds (Window caps segments, so the
// inflight scan is at most Window+1 entries).
func (c *Conn) PendingOut() int {
	n := len(c.sendBuf)
	for _, u := range c.inflight {
		n += len(u.payload)
	}
	return n
}

// Close initiates an orderly shutdown after queued data drains.
func (c *Conn) Close() {
	if c.state == StateClosed || c.finQueued {
		return
	}
	c.finQueued = true
	c.pump()
}

// Abort sends a reset and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagRST | flagACK})
	c.teardown(nil)
}

func (c *Conn) sendSYN() {
	c.inflight = append(c.inflight, unacked{seq: c.sndNxt, syn: true})
	c.sendSeg(segment{seq: c.sndNxt, flags: flagSYN})
	c.sndNxt++
	c.armRTO()
}

// pump moves queued data into flight, respecting MSS and window.
func (c *Conn) pump() {
	if c.state != StateEstablished && c.state != StateCloseWait && c.state != StateSynSent && c.state != StateSynReceived {
		return
	}
	if c.state == StateSynSent || c.state == StateSynReceived {
		return // data waits for the handshake
	}
	for len(c.sendBuf) > 0 && len(c.inflight) < c.ep.Window {
		n := c.ep.MSS
		if n > len(c.sendBuf) {
			n = len(c.sendBuf)
		}
		payload := append([]byte(nil), c.sendBuf[:n]...)
		c.sendBuf = c.sendBuf[n:]
		c.inflight = append(c.inflight, unacked{seq: c.sndNxt, payload: payload})
		c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK | flagPSH, payload: payload})
		c.sndNxt += uint32(n)
		c.BytesOut += uint64(n)
		// Time one segment per flight for RTT estimation.
		if !c.timing {
			c.timing = true
			c.sawRetransmitSinceTimed = false
			c.timedSeq = c.sndNxt // sample completes when ack covers it
			c.timedAt = c.ep.host.Sched().Now()
		}
	}
	if c.finQueued && !c.finSent && len(c.sendBuf) == 0 && len(c.inflight) < c.ep.Window {
		c.finSent = true
		c.inflight = append(c.inflight, unacked{seq: c.sndNxt, fin: true})
		c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK | flagFIN})
		c.sndNxt++
		switch c.state {
		case StateEstablished:
			c.state = StateFinWait
		case StateCloseWait:
			c.state = StateLastAck
		}
	}
	if len(c.inflight) > 0 && !c.rtoTimer.Pending() {
		// Arm the retransmission timer only when idle: re-arming on
		// every send would let a steady writer postpone retransmission
		// indefinitely.
		c.armRTO()
	}
}

func (c *Conn) sendSeg(seg segment) {
	seg.srcPort = c.key.localPort
	seg.dstPort = c.key.remotePort
	seg.window = uint16(c.ep.Window)
	c.ep.sendRaw(c.key.localAddr, c.key.remoteAddr, seg)
}

func (c *Conn) armRTO() {
	if c.rtoTimer == nil {
		// The connection's one retransmit Timer, reused via Reset for
		// every subsequent re-arm (per-segment Stop+After churned a
		// timer allocation for each write burst).
		c.rtoTimer = c.ep.host.Sched().After(c.rto, c.onRTO)
		return
	}
	c.rtoTimer.Reset(c.rto)
}

func (c *Conn) stopRTO() {
	c.rtoTimer.Stop()
}

// onRTO retransmits the oldest unacknowledged segment with exponential
// backoff — and reports the retransmission to the feedback listener,
// implementing the IP-interface addition of Section 7.1.2.
func (c *Conn) onRTO() {
	if c.state == StateClosed || len(c.inflight) == 0 {
		return
	}
	c.retries++
	if c.retries > c.ep.MaxRetries {
		c.ep.Stats.ConnsFailed++
		c.teardown(fmt.Errorf("tcplite: connection to %s (state %v): %w", c.key.remoteAddr, c.state, ErrConnTimeout))
		return
	}
	c.ep.Stats.Retransmissions++
	c.sawRetransmitSinceTimed = true
	if c.ep.Feedback != nil {
		c.ep.Feedback.Retransmission(c.key.remoteAddr)
	}
	c.retransmitFirst()
	c.rto *= 2
	if max := vtime.Duration(10e9); c.rto > max {
		c.rto = max
	}
	c.armRTO()
}

func (c *Conn) retransmitFirst() {
	u := c.inflight[0]
	switch {
	case u.syn:
		flags := uint8(flagSYN)
		if c.state == StateSynReceived {
			flags |= flagACK
		}
		seg := segment{seq: u.seq, flags: flags}
		if flags&flagACK != 0 {
			seg.ack = c.rcvNxt
		}
		c.sendSeg(seg)
	case u.fin:
		c.sendSeg(segment{seq: u.seq, ack: c.rcvNxt, flags: flagACK | flagFIN})
	default:
		c.sendSeg(segment{seq: u.seq, ack: c.rcvNxt, flags: flagACK | flagPSH, payload: u.payload})
	}
}

// handle processes one inbound segment.
func (c *Conn) handle(seg segment) {
	if seg.has(flagRST) {
		c.ep.Stats.Resets++
		c.teardown(fmt.Errorf("tcplite: connection reset by %s", c.key.remoteAddr))
		return
	}
	if c.state == StateTimeWait {
		// Only a retransmitted FIN warrants a response; everything else
		// is a stale duplicate.
		if seg.has(flagFIN) {
			c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
		}
		return
	}
	switch c.state {
	case StateSynSent:
		if seg.has(flagSYN) && seg.has(flagACK) && seg.ack == c.sndNxt {
			c.rcvNxt = seg.seq + 1
			c.ackInflight(seg.ack)
			c.state = StateEstablished
			c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
			c.reportProgress()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			c.pump()
		}
		return
	case StateSynReceived:
		if seg.has(flagSYN) && !seg.has(flagACK) {
			// The opening SYN (or a retransmission of it).
			c.rcvNxt = seg.seq + 1
			if len(c.inflight) == 0 {
				c.inflight = append(c.inflight, unacked{seq: c.sndNxt, syn: true})
				c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagSYN | flagACK})
				c.sndNxt++
				c.armRTO()
			} else {
				c.retransmitFirst() // duplicate SYN: re-answer
			}
			return
		}
		if seg.has(flagACK) && seg.ack == c.sndNxt {
			c.ackInflight(seg.ack)
			c.state = StateEstablished
			c.reportProgress()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			c.pump()
			// fall through: the ACK may carry data
		}
	}

	// Established-and-later processing.
	if seg.has(flagACK) {
		c.processAck(seg.ack)
	}
	if len(seg.payload) > 0 {
		c.processData(seg)
	}
	// The FIN occupies the sequence slot after any payload the segment
	// carries: checking seg.seq alone would miss a FIN piggybacked on
	// data (processData just advanced rcvNxt past it).
	finSeq := seg.seq + uint32(len(seg.payload))
	switch {
	case seg.has(flagFIN) && finSeq == c.rcvNxt:
		c.rcvNxt++
		c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
			if c.OnClose != nil {
				c.OnClose()
			}
		case StateFinWait:
			if c.OnClose != nil {
				c.OnClose()
			}
			if len(c.inflight) == 0 {
				// Our FIN is already acked (FIN-WAIT-2): linger to
				// re-ACK a retransmitted peer FIN.
				c.enterTimeWait()
			} else {
				// Simultaneous close: the peer FINed before acking
				// ours. Tearing down here (the old behavior) would
				// abandon our in-flight FIN and answer its ack — and
				// the peer's FIN retransmissions — with RSTs.
				c.state = StateClosing
			}
		}
	case seg.has(flagFIN) && len(seg.payload) == 0 && seqLT(seg.seq, c.rcvNxt):
		// A retransmitted FIN we already processed: our ACK was lost.
		// Re-ACK instead of staying silent (a dup FIN carrying payload
		// is re-ACKed by processData's old-data path).
		c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
	}
}

// enterTimeWait parks the connection until TimeWaitLinger elapses. The
// 4-tuple stays claimed so late peer segments are answered by handle
// (which re-ACKs duplicate FINs) rather than by the endpoint's RST path.
func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.stopRTO()
	c.ep.host.Sched().After(TimeWaitLinger, func() {
		if c.state == StateTimeWait {
			c.teardown(nil)
		}
	})
}

func (c *Conn) processAck(ack uint32) {
	if seqLE(ack, c.sndUna) {
		if ack == c.sndUna && len(c.inflight) > 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				// Fast retransmit.
				c.ep.Stats.FastRetransmits++
				if c.ep.Feedback != nil {
					c.ep.Feedback.Retransmission(c.key.remoteAddr)
				}
				c.retransmitFirst()
			}
		}
		return
	}
	c.dupAcks = 0
	c.retries = 0
	// RTT sample (Karn's rule: discard if anything was retransmitted
	// while the timed segment was in flight).
	if c.timing && seqLE(c.timedSeq, ack) {
		if !c.sawRetransmitSinceTimed {
			c.updateRTT(c.ep.host.Sched().Now().Sub(c.timedAt))
		}
		c.timing = false
	}
	c.rto = c.currentRTO()
	c.ackInflight(ack)
	c.reportProgress()
	if len(c.inflight) == 0 {
		c.stopRTO()
		switch c.state {
		case StateLastAck:
			c.teardown(nil)
			return
		case StateClosing:
			// Simultaneous close: our FIN is now acked too.
			c.enterTimeWait()
			return
		}
		// FinWait with everything acked: wait for the peer's FIN.
	} else {
		c.armRTO()
	}
	c.pump()
	if c.OnDrain != nil {
		c.OnDrain()
	}
}

func (c *Conn) ackInflight(ack uint32) {
	i := 0
	for ; i < len(c.inflight); i++ {
		u := c.inflight[i]
		end := u.seq + uint32(len(u.payload))
		if u.syn || u.fin {
			end = u.seq + 1
		}
		if seqLE(end, ack) {
			continue
		}
		break
	}
	c.inflight = c.inflight[i:]
	if seqLT(c.sndUna, ack) {
		c.sndUna = ack
	}
}

func (c *Conn) processData(seg segment) {
	if seqLT(seg.seq, c.rcvNxt) {
		// Old or partially-old data: ack what we have.
		c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
		return
	}
	if seg.seq != c.rcvNxt {
		// Out of order: stash and send a duplicate ACK.
		if _, dup := c.ooo[seg.seq]; !dup {
			c.ooo[seg.seq] = append([]byte(nil), seg.payload...)
		}
		c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
		return
	}
	c.deliver(seg.payload)
	// Drain contiguous out-of-order data.
	for {
		p, ok := c.ooo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.ooo, c.rcvNxt)
		c.deliver(p)
	}
	c.sendSeg(segment{seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK})
	c.reportProgress()
}

func (c *Conn) deliver(p []byte) {
	c.rcvNxt += uint32(len(p))
	c.BytesIn += uint64(len(p))
	if c.OnData != nil {
		c.OnData(p)
	}
}

func (c *Conn) reportProgress() {
	if c.ep.Feedback != nil {
		c.ep.Feedback.Progress(c.key.remoteAddr)
	}
}

func (c *Conn) teardown(err error) {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.stopRTO()
	delete(c.ep.conns, c.key)
	if err != nil && c.OnError != nil {
		c.OnError(err)
	}
}

// updateRTT folds one round-trip sample into the smoothed estimators
// (RFC 6298: alpha=1/8, beta=1/4).
func (c *Conn) updateRTT(sample vtime.Duration) {
	if sample <= 0 {
		return
	}
	if !c.hasRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasRTT = true
		return
	}
	diff := c.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + sample) / 8
}

// currentRTO derives the retransmission timeout from the estimators,
// floored at a granularity tick and falling back to the endpoint default
// before any sample exists.
func (c *Conn) currentRTO() vtime.Duration {
	if !c.hasRTT {
		return c.ep.RTO
	}
	rto := c.srtt + 4*c.rttvar
	if min := vtime.Duration(50e6); rto < min { // 50ms floor
		rto = min
	}
	return rto
}

// SRTT exposes the smoothed round-trip estimate (zero before the first
// sample); experiments read it to compare paths.
func (c *Conn) SRTT() vtime.Duration { return c.srtt }

// seqLT reports a < b in sequence space (RFC 1982 style).
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }
