package tcplite_test

import (
	"bytes"
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

const ms = vtime.Duration(1e6)

// pair builds two hosts on LANs joined by a router, with the given loss
// rate on the client side, and returns (client host, server host).
func pair(t testing.TB, loss float64) (*inet.Network, *stack.Host, *stack.Host) {
	t.Helper()
	n := inet.New(7)
	a := n.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 2 * ms, LossRate: loss})
	b := n.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	r := n.AddRouter("r")
	n.AttachRouter(r, a)
	n.AttachRouter(r, b)
	client := n.AddHost("client", a)
	server := n.AddHost("server", b)
	n.ComputeRoutes()
	return n, client, server
}

func TestHandshakeAndEcho(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)

	var serverGot bytes.Buffer
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) {
			serverGot.Write(p)
			_ = c.Write(p) // echo
		}
	}); err != nil {
		t.Fatal(err)
	}

	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var clientGot bytes.Buffer
	established := false
	conn.OnEstablished = func() {
		established = true
		_ = conn.Write([]byte("hello mobile world"))
	}
	conn.OnData = func(p []byte) { clientGot.Write(p) }

	n.RunFor(2e9)

	if !established {
		t.Fatal("handshake did not complete")
	}
	if got := serverGot.String(); got != "hello mobile world" {
		t.Errorf("server got %q", got)
	}
	if got := clientGot.String(); got != "hello mobile world" {
		t.Errorf("client echo got %q", got)
	}
}

func TestLargeTransferSegmentation(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)

	const total = 100_000
	var rx int
	if _, err := sep.Listen(9, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { rx += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i)
	}
	conn.OnEstablished = func() { _ = conn.Write(payload) }

	n.RunFor(30e9)
	if rx != total {
		t.Fatalf("received %d bytes, want %d", rx, total)
	}
}

func TestRetransmissionUnderLoss(t *testing.T) {
	n, ch, sh := pair(t, 0.15) // 15% loss on the client LAN
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)

	const total = 20_000
	var rx int
	if _, err := sep.Listen(9, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { rx += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { _ = conn.Write(make([]byte, total)) }

	n.RunFor(120e9)
	if rx != total {
		t.Fatalf("received %d bytes, want %d (retransmissions=%d)", rx, total, cep.Stats.Retransmissions)
	}
	if cep.Stats.Retransmissions == 0 && cep.Stats.FastRetransmits == 0 {
		t.Error("expected some retransmissions under 15% loss")
	}
}

func TestOrderlyClose(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)

	serverClosed := false
	if _, err := sep.Listen(5, func(c *tcplite.Conn) {
		c.OnClose = func() {
			serverClosed = true
			c.Close() // close our side too
		}
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	clientClosed := false
	conn.OnEstablished = func() { conn.Close() }
	conn.OnClose = func() { clientClosed = true }

	n.RunFor(5e9)
	if !serverClosed {
		t.Error("server never saw EOF")
	}
	if !clientClosed {
		t.Error("client never saw peer close")
	}
	if got := cep.ConnCount(); got != 0 {
		t.Errorf("client still tracks %d connections", got)
	}
	if got := sep.ConnCount(); got != 0 {
		t.Errorf("server still tracks %d connections", got)
	}
}

func TestConnectionRefusedRST(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	tcplite.New(sh) // endpoint installed but nothing listening

	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 81)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	conn.OnError = func(e error) { gotErr = e }
	n.RunFor(5e9)
	if gotErr == nil {
		t.Fatal("expected connection reset")
	}
}

func TestTimeoutWhenPeerUnreachable(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	tcplite.New(sh)

	// Dial an address that routes nowhere useful (no host holds it).
	conn, err := cep.Dial(ipv4.Zero, ipv4.MustParseAddr("10.2.0.200"), 7)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	conn.OnError = func(e error) { gotErr = e }
	n.RunFor(600e9)
	if gotErr == nil {
		t.Fatal("expected timeout error")
	}
	if cep.Stats.ConnsFailed != 1 {
		t.Errorf("ConnsFailed = %d, want 1", cep.Stats.ConnsFailed)
	}
}

// feedbackRecorder implements tcplite.FeedbackListener.
type feedbackRecorder struct {
	retrans  map[ipv4.Addr]int
	progress map[ipv4.Addr]int
}

func (f *feedbackRecorder) Retransmission(r ipv4.Addr) { f.retrans[r]++ }
func (f *feedbackRecorder) Progress(r ipv4.Addr)       { f.progress[r]++ }

func TestFeedbackSignals(t *testing.T) {
	n, ch, sh := pair(t, 0.2)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	fb := &feedbackRecorder{retrans: map[ipv4.Addr]int{}, progress: map[ipv4.Addr]int{}}
	cep.Feedback = fb

	if _, err := sep.Listen(7, func(c *tcplite.Conn) {}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { _ = conn.Write(make([]byte, 50_000)) }
	n.RunFor(120e9)

	server := sh.FirstAddr()
	if fb.progress[server] == 0 {
		t.Error("no progress signals delivered")
	}
	if fb.retrans[server] == 0 {
		t.Error("no retransmission signals under 20% loss")
	}
}

// BenchmarkTransferThroughput measures end-to-end reliable transfer over
// the simulated network: segmentation, checksums, cumulative ACKs,
// virtual-time pacing.
func BenchmarkTransferThroughput(b *testing.B) {
	n, ch, sh := pair(b, 0)
	n.Sim.Trace.Enabled = false
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	var rx int
	if _, err := sep.Listen(9, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { rx += len(p) }
	}); err != nil {
		b.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 9)
	if err != nil {
		b.Fatal(err)
	}
	established := false
	conn.OnEstablished = func() { established = true }
	n.RunFor(2e9)
	if !established {
		b.Fatal("no connection")
	}
	const chunk = 64 * 1024
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
		n.RunFor(60e9)
	}
	if rx == 0 {
		b.Fatal("nothing received")
	}
}
