// Package tcplite implements a miniature TCP-like reliable transport over
// the simulated stack: three-way handshake, cumulative acknowledgements,
// retransmission with exponential backoff and fast retransmit, and
// orderly close. It exists to reproduce the paper's transport-level
// arguments:
//
//   - connection durability across movement when the home address is the
//     endpoint identifier, and breakage when the temporary address is
//     (Section 2, Section 4 Out-DT);
//   - the endpoint-identifier decision at connection setup ("this
//     decision must also be made when TCP decides what address to use as
//     the endpoint identifier for a TCP connection", Section 7);
//   - the original-vs-retransmission feedback interface the paper
//     proposes IP should expose (Section 7.1.2) — every retransmission
//     and every delivery success is reported to an optional listener,
//     which the mobility selector consumes.
//
// The wire format is real TCP's 20-byte header (no options), so packet
// size accounting in the benchmarks matches the paper's arithmetic.
package tcplite

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// HeaderLen is the fixed segment header size (TCP without options).
const HeaderLen = 20

// Segment flags.
const (
	flagFIN uint8 = 1 << 0
	flagSYN uint8 = 1 << 1
	flagRST uint8 = 1 << 2
	flagPSH uint8 = 1 << 3
	flagACK uint8 = 1 << 4
)

// segment is a parsed transport segment.
type segment struct {
	srcPort uint16
	dstPort uint16
	seq     uint32
	ack     uint32
	flags   uint8
	window  uint16
	payload []byte
}

func (s *segment) has(f uint8) bool { return s.flags&f != 0 }

func (s *segment) String() string {
	fl := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{flagSYN, "S"}, {flagACK, "."}, {flagFIN, "F"}, {flagRST, "R"}, {flagPSH, "P"}} {
		if s.has(f.bit) {
			fl += f.name
		}
	}
	return fmt.Sprintf("tcp{%d>%d seq=%d ack=%d %s len=%d}", s.srcPort, s.dstPort, s.seq, s.ack, fl, len(s.payload))
}

// marshal serializes the segment with its checksum over the pseudo-header.
func (s *segment) marshal(src, dst ipv4.Addr) []byte {
	return s.appendMarshal(src, dst, nil)
}

// appendMarshal appends the serialized segment to buf and returns the
// extended slice. Every wire byte is written explicitly, so buf may come
// from a pool with dirty spare capacity.
func (s *segment) appendMarshal(src, dst ipv4.Addr, buf []byte) []byte {
	total := HeaderLen + len(s.payload)
	start := len(buf)
	if cap(buf)-start < total {
		grown := make([]byte, start, start+total)
		copy(grown, buf)
		buf = grown
	}
	b := buf[start : start+total]
	binary.BigEndian.PutUint16(b[0:], s.srcPort)
	binary.BigEndian.PutUint16(b[2:], s.dstPort)
	binary.BigEndian.PutUint32(b[4:], s.seq)
	binary.BigEndian.PutUint32(b[8:], s.ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = s.flags
	binary.BigEndian.PutUint16(b[14:], s.window)
	b[16], b[17] = 0, 0
	b[18], b[19] = 0, 0 // urgent pointer: always zero, but the pooled buf isn't
	copy(b[HeaderLen:], s.payload)
	binary.BigEndian.PutUint16(b[16:], ipv4.TransportChecksum(src, dst, ipv4.ProtoTCP, b))
	return buf[:start+total]
}

func checksumValid(src, dst ipv4.Addr, b []byte) bool {
	sum := ipv4.PseudoHeaderChecksum(src, dst, ipv4.ProtoTCP, len(b))
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return uint16(sum) == 0xffff
}

// parseSegment validates and decodes a transport payload.
func parseSegment(src, dst ipv4.Addr, b []byte) (segment, error) {
	var s segment
	if len(b) < HeaderLen {
		return s, fmt.Errorf("tcplite: truncated segment (%d bytes)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < HeaderLen || off > len(b) {
		return s, fmt.Errorf("tcplite: bad data offset %d", off)
	}
	// Verify the checksum without copying the segment: the one's-complement
	// sum of pseudo-header plus segment *including* the stored checksum
	// folds to all-ones for a valid segment. A wire checksum of zero never
	// occurs (marshal maps it to 0xffff per convention), so reject it
	// outright — as the old zero-and-recompute check did.
	if binary.BigEndian.Uint16(b[16:]) == 0 || !checksumValid(src, dst, b) {
		return s, fmt.Errorf("tcplite: checksum mismatch")
	}
	s.srcPort = binary.BigEndian.Uint16(b[0:])
	s.dstPort = binary.BigEndian.Uint16(b[2:])
	s.seq = binary.BigEndian.Uint32(b[4:])
	s.ack = binary.BigEndian.Uint32(b[8:])
	s.flags = b[13]
	s.window = binary.BigEndian.Uint16(b[14:])
	s.payload = b[off:]
	return s, nil
}
