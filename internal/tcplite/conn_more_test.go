package tcplite_test

import (
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/tcplite"
)

func TestWriteAfterCloseRejected(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() {
		conn.Close()
		if err := conn.Write([]byte("late")); err == nil {
			t.Error("write after Close accepted")
		}
	}
	n.RunFor(5e9)
}

func TestAbortSendsRST(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	var serverConn *tcplite.Conn
	var serverErr error
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		serverConn = c
		c.OnError = func(e error) { serverErr = e }
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { conn.Abort() }
	n.RunFor(5e9)
	if conn.State() != tcplite.StateClosed {
		t.Error("aborting side not closed")
	}
	if serverConn == nil {
		t.Fatal("server never accepted")
	}
	if serverErr == nil {
		t.Error("peer did not observe the reset")
	}
	if cep.ConnCount() != 0 || sep.ConnCount() != 0 {
		t.Error("connections leaked after abort")
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	cep.Window = 2
	cep.MSS = 100
	sep := tcplite.New(sh)
	var rx int
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { rx += len(p) }
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { _ = conn.Write(make([]byte, 1000)) }
	n.RunFor(60e9)
	if rx != 1000 {
		t.Fatalf("rx = %d", rx)
	}
	// 10 segments of 100 bytes; with window 2 the sender can never have
	// had more than 2 unacked — indirectly verified by the transfer
	// completing correctly; directly, SegsSent must show one ACK-paced
	// flight shape (10 data + handshake), not a burst-then-retransmit.
	if cep.Stats.Retransmissions != 0 {
		t.Errorf("retransmissions = %d on a lossless link", cep.Stats.Retransmissions)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	const each = 30_000
	var serverRx, clientRx int
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { serverRx += len(p) }
		_ = c.Write(make([]byte, each)) // server pushes immediately
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnData = func(p []byte) { clientRx += len(p) }
	conn.OnEstablished = func() { _ = conn.Write(make([]byte, each)) }
	n.RunFor(60e9)
	if serverRx != each || clientRx != each {
		t.Errorf("rx: server=%d client=%d, want %d each", serverRx, clientRx, each)
	}
}

func TestSimultaneousConnectionsSharePort(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	accepted := 0
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		accepted++
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		t.Fatal(err)
	}
	var echoes int
	for i := 0; i < 5; i++ {
		conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
		if err != nil {
			t.Fatal(err)
		}
		c := conn
		c.OnEstablished = func() { _ = c.Write([]byte("x")) }
		c.OnData = func(p []byte) { echoes++ }
	}
	n.RunFor(10e9)
	if accepted != 5 {
		t.Errorf("accepted = %d", accepted)
	}
	if echoes != 5 {
		t.Errorf("echoes = %d", echoes)
	}
}

func TestListenerCloseStopsAccepting(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	l, err := sep.Listen(7, func(c *tcplite.Conn) { t.Error("accepted after close") })
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var refused error
	conn.OnError = func(e error) { refused = e }
	n.RunFor(5e9)
	if refused == nil {
		t.Error("dial to closed listener not refused")
	}
	if _, err := sep.Listen(7, nil); err != nil {
		t.Errorf("port not reusable after listener close: %v", err)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	_, _, sh := pair(t, 0)
	sep := tcplite.New(sh)
	if _, err := sep.Listen(7, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sep.Listen(7, nil); err == nil {
		t.Error("duplicate listen accepted")
	}
}

func TestDialExplicitLocalAddress(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	other := ipv4.MustParseAddr("36.1.1.3")
	ch.Claim(other, nil)
	var peerSaw ipv4.Addr
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		peerSaw = c.RemoteAddr()
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(other, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if conn.LocalAddr() != other {
		t.Errorf("local addr = %s", conn.LocalAddr())
	}
	n.RunFor(5e9)
	// The SYN carried the explicit source; the server keyed the
	// connection to it (even though replies will not route back in this
	// plain topology — the endpoint identity is the point here).
	if peerSaw != other {
		t.Errorf("peer saw %s, want %s", peerSaw, other)
	}
}

func TestRTTEstimationConvergesAndAdaptsRTO(t *testing.T) {
	n, ch, sh := pair(t, 0)
	cep := tcplite.New(ch)
	sep := tcplite.New(sh)
	if _, err := sep.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, sh.FirstAddr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { _ = conn.Write([]byte("sample")) }
	echoes := 0
	conn.OnData = func(p []byte) {
		echoes++
		if echoes < 10 {
			_ = conn.Write([]byte("sample"))
		}
	}
	n.RunFor(30e9)
	if echoes < 10 {
		t.Fatalf("echoes = %d", echoes)
	}
	srtt := conn.SRTT()
	if srtt == 0 {
		t.Fatal("no RTT samples collected")
	}
	// Path: 2ms + 2ms each way = 8ms RTT (warm ARP); the estimate must
	// land in that neighbourhood.
	if srtt < 4e6 || srtt > 20e6 {
		t.Errorf("SRTT = %v, want ~8ms", srtt)
	}
}

func TestTransferUnderReordering(t *testing.T) {
	// A jittery path reorders segments aggressively; the out-of-order
	// buffer must reassemble the stream byte-exactly.
	n := inet.New(13)
	a := n.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 1e6, JitterMax: 30e6})
	b := n.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	r := n.AddRouter("r")
	n.AttachRouter(r, a)
	n.AttachRouter(r, b)
	client := n.AddHost("client", a)
	server := n.AddHost("server", b)
	n.ComputeRoutes()

	cep := tcplite.New(client)
	sep := tcplite.New(server)
	const total = 50_000
	var got []byte
	if _, err := sep.Listen(9, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { got = append(got, p...) }
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := cep.Dial(ipv4.Zero, server.FirstAddr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	conn.OnEstablished = func() { _ = conn.Write(payload) }
	n.RunFor(300e9)

	if len(got) != total {
		t.Fatalf("received %d/%d bytes", len(got), total)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted: %d != %d", i, got[i], payload[i])
		}
	}
}
