package faults

import (
	"reflect"
	"strings"
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

func testPair(t *testing.T) (*netsim.Sim, *netsim.Segment, *netsim.NIC, *netsim.NIC, *int) {
	t.Helper()
	sim := netsim.NewSim(7)
	seg := sim.NewSegment("lan", netsim.SegmentOpts{Latency: 1e6})
	tx := sim.NewNIC("tx")
	rx := sim.NewNIC("rx")
	delivered := 0
	rx.SetReceiver(func(*netsim.NIC, netsim.Frame) { delivered++ })
	tx.Attach(seg)
	rx.Attach(seg)
	return sim, seg, tx, rx, &delivered
}

func send(tx, rx *netsim.NIC, payload []byte) {
	buf := netsim.GetBuf()
	buf.B = append(buf.B, payload...)
	tx.Send(netsim.Frame{Dst: rx.MAC(), Type: netsim.EtherTypeIPv4, Payload: buf.B, Buf: buf})
}

func TestInjectorLogAndTrace(t *testing.T) {
	sim := netsim.NewSim(1)
	inj := NewInjector(sim)
	fired := 0
	inj.At(5e9, "first fault", func() { fired++ })
	inj.At(2e9, "earlier fault", func() { fired++ })
	inj.At(9e9, "logged without action", nil)
	sim.Sched.Run()

	want := []string{
		"2000000000 earlier fault",
		"5000000000 first fault",
		"9000000000 logged without action",
	}
	if !reflect.DeepEqual(inj.Log(), want) {
		t.Errorf("Log() = %q, want %q", inj.Log(), want)
	}
	if fired != 2 {
		t.Errorf("fired %d actions, want 2", fired)
	}
	if n := sim.Trace.Count(netsim.EventNote); n != 3 {
		t.Errorf("EventNote count = %d, want 3", n)
	}
	if got := inj.LogText(); !strings.HasSuffix(got, "\n") || strings.Count(got, "\n") != 3 {
		t.Errorf("LogText() = %q, want 3 newline-terminated lines", got)
	}
}

func TestGilbertElliottBadStateDropsEverything(t *testing.T) {
	sim, seg, tx, rx, delivered := testPair(t)
	// First frame clocks the chain into the bad state and stays there.
	lf := ImpairLink(sim, seg, LinkFaultOpts{PGoodBad: 1, PBadGood: 0, BadLoss: 1})
	for k := 0; k < 10; k++ {
		send(tx, rx, []byte{byte(k)})
	}
	sim.Sched.Run()
	if *delivered != 0 {
		t.Errorf("delivered %d frames through a 100%%-loss bad state", *delivered)
	}
	if got := sim.Metrics.DropCount(metrics.DropGilbertElliott); got != 10 || seg.DroppedFault != 10 {
		t.Errorf("gilbert_elliott drops = %d, DroppedFault = %d, want 10/10", got, seg.DroppedFault)
	}
	if !lf.InBadState() {
		t.Error("chain should be pinned in the bad state")
	}

	lf.Remove()
	send(tx, rx, []byte("healed"))
	sim.Sched.Run()
	if *delivered != 1 {
		t.Errorf("delivered %d after Remove, want 1 (clean path restored)", *delivered)
	}
}

func TestGilbertElliottGoodStateIsClean(t *testing.T) {
	sim, seg, tx, rx, delivered := testPair(t)
	// No transitions, no good-state loss: pure pass-through.
	ImpairLink(sim, seg, LinkFaultOpts{BadLoss: 1})
	for k := 0; k < 10; k++ {
		send(tx, rx, []byte{byte(k)})
	}
	sim.Sched.Run()
	if *delivered != 10 {
		t.Errorf("delivered %d frames, want all 10 in the good state", *delivered)
	}
}

// chaoticCounts runs one impaired burst and returns the impairment
// counters — used to pin seed-determinism.
func chaoticCounts(seed int64) [4]uint64 {
	sim := netsim.NewSim(seed)
	seg := sim.NewSegment("lan", netsim.SegmentOpts{Latency: 1e6})
	tx := sim.NewNIC("tx")
	rx := sim.NewNIC("rx")
	rx.SetReceiver(func(*netsim.NIC, netsim.Frame) {})
	tx.Attach(seg)
	rx.Attach(seg)
	lf := ImpairLink(sim, seg, LinkFaultOpts{
		PGoodBad: 0.2, PBadGood: 0.5, GoodLoss: 0.05, BadLoss: 0.6,
		DupRate: 0.1, CorruptRate: 0.1, ReorderRate: 0.2, ReorderMax: 5e6,
	})
	for k := 0; k < 200; k++ {
		send(tx, rx, []byte{byte(k), byte(k >> 8)})
	}
	sim.Sched.Run()
	return [4]uint64{sim.Metrics.DropCount(metrics.DropGilbertElliott), lf.Dups, lf.Corrupts, lf.Reorders}
}

func TestLinkFaultDeterministicPerSeed(t *testing.T) {
	a := chaoticCounts(42)
	b := chaoticCounts(42)
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a == ([4]uint64{}) {
		t.Error("no impairments fired; parameters too weak to exercise anything")
	}
	if c := chaoticCounts(43); c == a {
		t.Error("different seeds produced identical counters (RNG not wired?)")
	}
}

func ipv4Frame(src ipv4.Addr) []byte {
	p := make([]byte, 28) // minimal header + 8 payload bytes
	p[0] = 0x45
	copy(p[12:16], src[:])
	return p
}

func TestBlackholeSourceMatchesOnlyThatSource(t *testing.T) {
	sim, seg, tx, rx, delivered := testPair(t)
	victim := ipv4.MustParseAddr("128.9.1.50")
	other := ipv4.MustParseAddr("36.1.1.2")
	bh := BlackholeSource(seg, victim)

	send(tx, rx, ipv4Frame(victim))
	send(tx, rx, ipv4Frame(other))
	send(tx, rx, ipv4Frame(victim))
	sim.Sched.Run()

	if *delivered != 1 {
		t.Errorf("delivered %d frames, want 1 (only the innocent source)", *delivered)
	}
	if got := sim.Metrics.DropCount(metrics.DropBlackhole); got != 2 {
		t.Errorf("blackhole drops = %d, want 2", got)
	}

	bh.Remove()
	send(tx, rx, ipv4Frame(victim))
	sim.Sched.Run()
	if *delivered != 2 {
		t.Error("victim still filtered after Remove")
	}
}

func TestBlackholeIgnoresNonIPv4(t *testing.T) {
	sim, seg, tx, rx, delivered := testPair(t)
	victim := ipv4.MustParseAddr("128.9.1.50")
	BlackholeSource(seg, victim)
	buf := netsim.GetBuf()
	buf.B = append(buf.B, ipv4Frame(victim)...)
	tx.Send(netsim.Frame{Dst: rx.MAC(), Type: netsim.EtherTypeARP, Payload: buf.B, Buf: buf})
	sim.Sched.Run()
	if *delivered != 1 {
		t.Errorf("ARP frame filtered by IPv4 blackhole (delivered=%d)", *delivered)
	}
}

func TestCutLinkWindow(t *testing.T) {
	sim, seg, tx, rx, delivered := testPair(t)
	inj := NewInjector(sim)
	inj.CutLink(1e9, seg, 2e9) // down over [1s, 3s)

	for _, at := range []vtime.Time{5e8, 2e9, 4e9} {
		sim.Sched.At(at, func() { send(tx, rx, []byte("probe")) })
	}
	sim.Sched.Run()

	if *delivered != 2 {
		t.Errorf("delivered %d probes, want 2 (before and after the window)", *delivered)
	}
	if seg.DroppedDown != 1 {
		t.Errorf("DroppedDown = %d, want 1 (the mid-window probe)", seg.DroppedDown)
	}
	if seg.Down() {
		t.Error("segment still down after heal")
	}
	if len(inj.Log()) != 2 {
		t.Errorf("fault log has %d entries, want cut+heal", len(inj.Log()))
	}
}

func TestFlapLinkCycles(t *testing.T) {
	sim, seg, _, _, _ := testPair(t)
	inj := NewInjector(sim)
	inj.FlapLink(1e9, seg, 1e9, 1e9, 3)
	sim.Sched.Run()
	if got := len(inj.Log()); got != 6 {
		t.Errorf("fault log has %d entries, want 6 (3 cut/heal pairs)", got)
	}
	if seg.Down() {
		t.Error("segment left down after final flap")
	}
}

func TestBounceInterfaceReattachesAndFiresOnUp(t *testing.T) {
	sim := netsim.NewSim(3)
	seg := sim.NewSegment("lan", netsim.SegmentOpts{})
	h := stack.NewHost(sim, "mh")
	ifc := h.AddIface("eth0", seg, ipv4.MustParseAddr("10.0.0.1"), ipv4.MustParsePrefix("10.0.0.0/24"))

	inj := NewInjector(sim)
	upFired := false
	inj.BounceInterface(1e9, ifc, 5e8, func() { upFired = true })

	sim.Sched.RunUntil(12e8) // mid-outage
	if ifc.NIC().Attached() {
		t.Error("interface still attached mid-bounce")
	}
	sim.Sched.Run()
	if !upFired {
		t.Error("onUp callback never fired")
	}
	if ifc.NIC().Segment() != seg {
		t.Error("interface not reattached to its original segment")
	}
}
