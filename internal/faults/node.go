package faults

import (
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// Link-window and node-level fault actions. Each schedules through
// Injector.At so the action lands in the fault log at its firing vtime.

// CutLink takes seg administratively down at time at and brings it back
// up after d. Frames sent during the window are dropped (DroppedDown).
func (inj *Injector) CutLink(at vtime.Time, seg *netsim.Segment, d vtime.Duration) {
	inj.At(at, "cut link "+seg.Name(), func() { seg.SetDown(true) })
	inj.At(at.Add(d), "heal link "+seg.Name(), func() { seg.SetDown(false) })
}

// FlapLink schedules n consecutive down/up cycles on seg starting at
// time at: down for downFor, up for upFor, repeated.
func (inj *Injector) FlapLink(at vtime.Time, seg *netsim.Segment, downFor, upFor vtime.Duration, n int) {
	for k := 0; k < n; k++ {
		inj.CutLink(at, seg, downFor)
		at = at.Add(downFor + upFor)
	}
}

// BounceInterface detaches ifc from its segment at time at and reattaches
// it to the same segment after downFor. onUp, if non-nil, runs right
// after reattachment (a mobile node hangs re-registration here).
func (inj *Injector) BounceInterface(at vtime.Time, ifc *stack.Iface, downFor vtime.Duration, onUp func()) {
	inj.At(at, "interface down "+ifc.NIC().Name(), func() {
		seg := ifc.NIC().Segment()
		ifc.Detach()
		inj.After(downFor, "interface up "+ifc.NIC().Name(), func() {
			ifc.Attach(seg)
			if onUp != nil {
				onUp()
			}
		})
	})
}

// CrashHomeAgent crashes ha at time at: all bindings, their expiry
// timers, address claims and proxy-ARP entries are lost (soft state).
func (inj *Injector) CrashHomeAgent(at vtime.Time, ha *mobileip.HomeAgent) {
	inj.At(at, "home agent crash", ha.Crash)
}

// RestartHomeAgent restarts a crashed ha at time at; bindings must be
// re-learned from mobile nodes' re-registrations.
func (inj *Injector) RestartHomeAgent(at vtime.Time, ha *mobileip.HomeAgent) {
	inj.At(at, "home agent restart", ha.Restart)
}

// CrashForeignAgent crashes fa at time at: its visitor table is lost and
// it stops serving registrations and tunneled traffic.
func (inj *Injector) CrashForeignAgent(at vtime.Time, fa *mobileip.ForeignAgent) {
	inj.At(at, "foreign agent crash", fa.Crash)
}

// RestartForeignAgent restarts a crashed fa at time at.
func (inj *Injector) RestartForeignAgent(at vtime.Time, fa *mobileip.ForeignAgent) {
	inj.At(at, "foreign agent restart", fa.Restart)
}
