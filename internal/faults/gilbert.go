package faults

import (
	"math/rand"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

// LinkFaultOpts parameterizes a link impairment. All probabilities are
// per-frame in [0,1]; zero values disable that impairment.
type LinkFaultOpts struct {
	// Gilbert-Elliott two-state burst loss: the link alternates between a
	// good state (loss GoodLoss) and a bad state (loss BadLoss), with
	// per-frame transition probabilities PGoodBad and PBadGood. With both
	// transition probabilities zero the chain stays in the good state and
	// the model degenerates to uniform loss at GoodLoss.
	PGoodBad float64
	PBadGood float64
	GoodLoss float64
	BadLoss  float64

	// DupRate duplicates a surviving frame (one extra copy).
	DupRate float64
	// CorruptRate flips one random payload bit in a surviving frame.
	CorruptRate float64
	// ReorderRate holds a surviving frame back by a uniform extra delay in
	// (0, ReorderMax], letting later frames overtake it.
	ReorderRate float64
	ReorderMax  vtime.Duration
}

// LinkFault is an installed link impairment: a Gilbert-Elliott loss chain
// plus independent duplication / corruption / reordering draws, attached
// to one segment's fault hook. Drops are counted centrally: the verdict
// attributes them to metrics.DropGilbertElliott, so the registry's
// drop-cause vector — not a per-fault field — is the one source of
// truth (read it with sim.Metrics.DropCount).
type LinkFault struct {
	seg  *netsim.Segment
	opts LinkFaultOpts
	rng  *rand.Rand
	bad  bool

	Dups     uint64
	Corrupts uint64
	Reorders uint64
}

// ImpairLink installs a LinkFault on seg, replacing any previous fault
// hook. The fault owns a stream derived from (seed, index) so its chain
// clocking is reproducible per seed and independent of every other
// entity's draws. Remove() detaches it.
func ImpairLink(sim *netsim.Sim, seg *netsim.Segment, opts LinkFaultOpts) *LinkFault {
	lf := &LinkFault{seg: seg, opts: opts, rng: sim.Sched.NewStream()}
	seg.SetFaultHook(lf.verdict)
	return lf
}

func (lf *LinkFault) verdict(netsim.Frame) netsim.Impairment {
	// State transition first (per-frame chain clocking), then the loss
	// draw for the state we land in.
	if lf.bad {
		if lf.opts.PBadGood > 0 && lf.rng.Float64() < lf.opts.PBadGood {
			lf.bad = false
		}
	} else {
		if lf.opts.PGoodBad > 0 && lf.rng.Float64() < lf.opts.PGoodBad {
			lf.bad = true
		}
	}
	loss := lf.opts.GoodLoss
	if lf.bad {
		loss = lf.opts.BadLoss
	}
	if loss > 0 && lf.rng.Float64() < loss {
		return netsim.Impairment{Drop: true, Cause: metrics.DropGilbertElliott}
	}
	var imp netsim.Impairment
	if lf.opts.DupRate > 0 && lf.rng.Float64() < lf.opts.DupRate {
		lf.Dups++
		imp.Duplicate = true
	}
	if lf.opts.CorruptRate > 0 && lf.rng.Float64() < lf.opts.CorruptRate {
		lf.Corrupts++
		imp.Corrupt = true
	}
	if lf.opts.ReorderRate > 0 && lf.opts.ReorderMax > 0 && lf.rng.Float64() < lf.opts.ReorderRate {
		lf.Reorders++
		imp.ExtraDelay = vtime.Duration(1 + lf.rng.Int63n(int64(lf.opts.ReorderMax)))
	}
	return imp
}

// InBadState reports whether the Gilbert-Elliott chain is currently in
// the bad (bursty-loss) state.
func (lf *LinkFault) InBadState() bool { return lf.bad }

// Remove detaches the impairment from its segment if it is still the
// installed hook. Safe to call twice.
func (lf *LinkFault) Remove() {
	lf.seg.SetFaultHook(nil)
}

// Blackhole silently discards IPv4 frames whose source address matches —
// an ingress filter appearing mid-conversation (Section 3.1 of the
// paper), from the sender's point of view: packets vanish with no error.
// Drops land under metrics.DropBlackhole in the owning sim's registry.
type Blackhole struct {
	seg *netsim.Segment
	src ipv4.Addr
}

// BlackholeSource installs a blackhole on seg for IPv4 frames sourced
// from src, replacing any previous fault hook.
func BlackholeSource(seg *netsim.Segment, src ipv4.Addr) *Blackhole {
	bh := &Blackhole{seg: seg, src: src}
	seg.SetFaultHook(bh.verdict)
	return bh
}

func (bh *Blackhole) verdict(f netsim.Frame) netsim.Impairment {
	// IPv4 source address lives at bytes 12..15 of the header.
	if f.Type == netsim.EtherTypeIPv4 && len(f.Payload) >= 20 &&
		f.Payload[12] == bh.src[0] && f.Payload[13] == bh.src[1] &&
		f.Payload[14] == bh.src[2] && f.Payload[15] == bh.src[3] {
		return netsim.Impairment{Drop: true, Cause: metrics.DropBlackhole}
	}
	return netsim.Impairment{}
}

// Remove detaches the blackhole from its segment.
func (bh *Blackhole) Remove() {
	bh.seg.SetFaultHook(nil)
}

// PortBlackhole silently discards UDP datagrams addressed to one
// destination port — a middlebox that eats a control protocol while
// passing everything else. E17 uses it to blackhole binding updates
// (port 435) and prove the route-optimization tier's hard fallback:
// updates vanish, cached bindings expire, and every conversation
// degrades to In-IE triangle routing instead of a black hole.
type PortBlackhole struct {
	seg  *netsim.Segment
	port uint16
}

// BlackholePort installs a blackhole on seg for UDP frames destined to
// dstPort, replacing any previous fault hook.
func BlackholePort(seg *netsim.Segment, dstPort uint16) *PortBlackhole {
	bh := &PortBlackhole{seg: seg, port: dstPort}
	seg.SetFaultHook(bh.verdict)
	return bh
}

func (bh *PortBlackhole) verdict(f netsim.Frame) netsim.Impairment {
	if f.Type != netsim.EtherTypeIPv4 || len(f.Payload) < 20 {
		return netsim.Impairment{}
	}
	b := f.Payload
	hlen := int(b[0]&0x0f) * 4
	// Protocol at byte 9; the UDP destination port sits two bytes into
	// the transport header.
	if b[9] != 17 || hlen < 20 || len(b) < hlen+4 {
		return netsim.Impairment{}
	}
	if uint16(b[hlen+2])<<8|uint16(b[hlen+3]) == bh.port {
		return netsim.Impairment{Drop: true, Cause: metrics.DropBlackhole}
	}
	return netsim.Impairment{}
}

// Remove detaches the blackhole from its segment.
func (bh *PortBlackhole) Remove() {
	bh.seg.SetFaultHook(nil)
}
