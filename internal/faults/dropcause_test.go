package faults

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
)

// TestDropCausesAreDistinct pins the faults→metrics contract: each fault
// mechanism increments exactly one drop-cause counter in the sim's
// registry, and nothing else. The chaos experiment's invariants (and any
// future dashboard) depend on these causes never bleeding into each
// other.
func TestDropCausesAreDistinct(t *testing.T) {
	victim := ipv4.MustParseAddr("128.9.1.50")

	cases := []struct {
		name  string
		arm   func(sim *netsim.Sim, seg *netsim.Segment) // install the fault
		fire  func(sim *netsim.Sim, tx, rx *netsim.NIC)  // provoke exactly one drop
		cause metrics.DropCause
	}{
		{
			name: "gilbert_elliott",
			arm: func(sim *netsim.Sim, seg *netsim.Segment) {
				ImpairLink(sim, seg, LinkFaultOpts{PGoodBad: 1, PBadGood: 0, BadLoss: 1})
			},
			fire: func(sim *netsim.Sim, tx, rx *netsim.NIC) {
				send(tx, rx, []byte("doomed"))
				sim.Sched.Run()
			},
			cause: metrics.DropGilbertElliott,
		},
		{
			name: "blackhole",
			arm: func(sim *netsim.Sim, seg *netsim.Segment) {
				BlackholeSource(seg, victim)
			},
			fire: func(sim *netsim.Sim, tx, rx *netsim.NIC) {
				send(tx, rx, ipv4Frame(victim))
				sim.Sched.Run()
			},
			cause: metrics.DropBlackhole,
		},
		{
			name: "partition",
			arm: func(sim *netsim.Sim, seg *netsim.Segment) {
				NewInjector(sim).CutLink(0, seg, 10e9)
			},
			fire: func(sim *netsim.Sim, tx, rx *netsim.NIC) {
				sim.Sched.At(1e9, func() { send(tx, rx, []byte("into the void")) })
				sim.Sched.Run()
			},
			cause: metrics.DropDown,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, seg, tx, rx, delivered := testPair(t)
			tc.arm(sim, seg)
			tc.fire(sim, tx, rx)

			if *delivered != 0 {
				t.Fatalf("frame delivered despite %s fault", tc.name)
			}
			for c := metrics.DropCause(0); c < metrics.NumDropCauses; c++ {
				want := uint64(0)
				if c == tc.cause {
					want = 1
				}
				if got := sim.Metrics.DropCount(c); got != want {
					t.Errorf("drop/%s = %d, want %d", c, got, want)
				}
			}
		})
	}
}
