package faults

import (
	"encoding/binary"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// Adversarial fault actors: deterministic attackers for the E15
// hijack-resistance experiment. Where the rest of this package models a
// hostile *network* (loss, partitions, crashes), these model a hostile
// *participant* — the threats DESIGN.md §11 says authenticated
// registration must absorb:
//
//   - BindingThief forges registrations for victim mobile hosts, naming
//     its own address as the care-of address. Against an authenticated
//     home agent every forgery dies as auth_bad_mac; against a legacy
//     one it steals the binding.
//   - Replayer taps a segment, captures legitimate registration
//     requests byte-for-byte, and re-emits them later. MACs verify (the
//     bytes are genuine), so these probe the identification window:
//     prompt re-emission dies as auth_replay, late re-emission as
//     auth_stale_id.
//   - RogueFA impersonates a foreign agent: it advertises, taps its
//     segment like a relay would, and re-emits captured registrations
//     with inflated lifetimes. The tamper breaks the MAC, so every
//     relayed-and-modified message dies as auth_bad_mac.
//
// Determinism contract: actors make no random draws of their own — what
// to attack and when is decided by the caller (the fleet derives both
// from its seed) — and every capture hook copies what it keeps, per the
// SetFaultHook no-retention rule. Counters are written only from events
// on the owning host's shard.

// Denials tallies the registration reply codes an actor's messages drew
// — the attacker's own receipt trail. The fleet invariants cross-check
// it against the actor's send counts: every attack message must come
// back denied with the cause its kind predicts, and none may ever come
// back accepted. Counting at the attacker (rather than only in the
// metrics registry) keeps the attribution exact even when legitimate
// traffic earns a reject of its own — a reordered in-flight
// registration is rightly refused as stale, and must not be confused
// with attack fallout.
type Denials struct {
	Accepted uint64 // attack messages the agent accepted (hijack-adjacent; must stay 0)
	BadMAC   uint64 // CodeDeniedAuthFailed receipts
	Replay   uint64 // CodeDeniedReplay receipts
	Stale    uint64 // CodeDeniedStaleID receipts
	Other    uint64 // any other code (none is expected)
}

// observe classifies one datagram arriving on an attacker's socket.
func (d *Denials) observe(payload []byte) {
	rep, _, _, ok := mobileip.ParseReply(payload)
	if !ok {
		return
	}
	switch rep.Code {
	case mobileip.CodeAccepted:
		d.Accepted++
	case mobileip.CodeDeniedAuthFailed:
		d.BadMAC++
	case mobileip.CodeDeniedReplay:
		d.Replay++
	case mobileip.CodeDeniedStaleID:
		d.Stale++
	default:
		d.Other++
	}
}

// thiefIDBase puts forged identifications far above any vtime-derived
// one (a day of vtime), so a legacy home agent's monotone-counter check
// never saves it from the forgery.
const thiefIDBase = uint64(1) << 40

// forgedLifetime is the lifetime a thief asks for: long enough that a
// stolen binding would outlive the trial.
const forgedLifetime = 600

// BindingThief forges registration requests for victim mobile hosts
// from its own attachment point.
type BindingThief struct {
	host      *stack.Host
	sock      *stack.UDPSocket
	homeAgent ipv4.Addr

	// Forged counts emitted forgeries; Denials the replies they drew.
	// Owned by the thief's shard.
	Forged  uint64
	Denials Denials
}

// NewBindingThief attaches a thief to host, targeting the home agent at
// homeAgent. Replies come back to the thief's socket and are tallied in
// Denials.
func NewBindingThief(host *stack.Host, homeAgent ipv4.Addr) (*BindingThief, error) {
	t := &BindingThief{host: host, homeAgent: homeAgent}
	sock, err := host.OpenUDP(ipv4.Zero, 0, func(_ ipv4.Addr, _ uint16, _ ipv4.Addr, payload []byte) {
		t.Denials.observe(payload)
	})
	if err != nil {
		return nil, err
	}
	t.sock = sock
	return t, nil
}

// Host returns the attacker's host (for scheduling on its shard).
func (t *BindingThief) Host() *stack.Host { return t.host }

// Addr returns the thief's own address — the care-of address its
// forgeries try to steal bindings to.
func (t *BindingThief) Addr() ipv4.Addr { return t.host.FirstAddr() }

// Forge emits one forged registration for victim, naming the thief's
// address as the care-of address. With bogusExt the forgery carries a
// syntactically valid authentication extension with a fabricated MAC
// (the attacker holds no key), exercising the verify path rather than
// the missing-extension path.
func (t *BindingThief) Forge(victim ipv4.Addr, bogusExt bool) {
	t.Forged++
	req := mobileip.Request{
		Lifetime:  forgedLifetime,
		Home:      victim,
		HomeAgent: t.homeAgent,
		CareOf:    t.Addr(),
		ID:        thiefIDBase + t.Forged,
	}
	buf := netsim.GetBuf()
	b := req.AppendMarshal(buf.B)
	if bogusExt {
		ext := mobileip.AuthExt{SPI: 0xbad5eed}
		for i := range ext.MAC {
			ext.MAC[i] = 0xa5
		}
		b = ext.AppendMarshal(b)
	}
	_ = t.sock.SendToFrom(t.Addr(), t.homeAgent, udp.PortRegistration, b)
	netsim.PutBuf(buf)
}

// Close releases the thief's socket.
func (t *BindingThief) Close() { t.sock.Close() }

// capture is one recorded registration request: the UDP payload bytes
// (copied — the fault hook may not retain the frame's) plus where the
// original was headed.
type capture struct {
	dst     ipv4.Addr
	payload []byte
}

// registrationRequest extracts the UDP payload of a registration
// request crossing a tapped segment, or ok=false for any other frame.
// src and dst are the IP-level endpoints.
func registrationRequest(f netsim.Frame) (src, dst ipv4.Addr, payload []byte, ok bool) {
	if f.Type != netsim.EtherTypeIPv4 {
		return src, dst, nil, false
	}
	pkt, err := ipv4.Unmarshal(f.Payload)
	if err != nil || pkt.Protocol != ipv4.ProtoUDP || len(pkt.Payload) < udp.HeaderLen+1 {
		return src, dst, nil, false
	}
	if binary.BigEndian.Uint16(pkt.Payload[2:4]) != udp.PortRegistration ||
		pkt.Payload[udp.HeaderLen] != mobileip.TypeRegistrationRequest {
		return src, dst, nil, false
	}
	return pkt.Src, pkt.Dst, pkt.Payload[udp.HeaderLen:], true
}

// Replayer captures legitimate registration requests off a segment and
// re-emits them from its own address. The captured bytes are genuine,
// so their MACs verify; what the re-emission probes is the replay
// window. The hook passes every frame through untouched — a tap, not an
// impairment.
type Replayer struct {
	host *stack.Host
	sock *stack.UDPSocket
	seg  *netsim.Segment
	skip func(ipv4.Addr) bool
	max  int
	// delay is how long after each capture the prompt re-emission
	// fires; zero disables prompt replays (capture only).
	delay vtime.Duration
	caps  []capture

	// Captured and Replayed count captures and re-emissions; Denials
	// the replies the re-emissions drew. Owned by the replayer's shard
	// (which is the tapped segment's shard).
	Captured uint64
	Replayed uint64
	Denials  Denials
}

// NewReplayer attaches a replayer to host, tapping seg. Sources for
// which skip returns true (the other attackers, typically) are not
// captured; at most maxCaptures requests are kept.
func NewReplayer(host *stack.Host, seg *netsim.Segment, maxCaptures int, delay vtime.Duration, skip func(ipv4.Addr) bool) (*Replayer, error) {
	r := &Replayer{host: host, seg: seg, skip: skip, max: maxCaptures, delay: delay}
	sock, err := host.OpenUDP(ipv4.Zero, 0, func(_ ipv4.Addr, _ uint16, _ ipv4.Addr, payload []byte) {
		r.Denials.observe(payload)
	})
	if err != nil {
		return nil, err
	}
	r.sock = sock
	return r, nil
}

// Host returns the attacker's host (for scheduling on its shard).
func (r *Replayer) Host() *stack.Host { return r.host }

// StartCapture installs the tap, replacing any previous fault hook on
// the segment.
func (r *Replayer) StartCapture() { r.seg.SetFaultHook(r.verdict) }

// StopCapture removes the tap.
func (r *Replayer) StopCapture() { r.seg.SetFaultHook(nil) }

func (r *Replayer) verdict(f netsim.Frame) netsim.Impairment {
	if len(r.caps) >= r.max {
		return netsim.Impairment{}
	}
	src, dst, payload, ok := registrationRequest(f)
	if !ok || (r.skip != nil && r.skip(src)) {
		return netsim.Impairment{}
	}
	c := capture{dst: dst, payload: append([]byte(nil), payload...)}
	r.caps = append(r.caps, c)
	r.Captured++
	if r.delay > 0 {
		r.host.Sched().After(r.delay, func() { r.emit(c) })
	}
	return netsim.Impairment{}
}

// emit re-sends one capture from the replayer's own address. The reply
// (a denial, against an authenticated agent) comes back here, not to
// the victim.
func (r *Replayer) emit(c capture) {
	r.Replayed++
	_ = r.sock.SendToFrom(r.host.FirstAddr(), c.dst, udp.PortRegistration, c.payload)
}

// ReplayCaptured re-emits the first n captures now (all of them if
// fewer were taken) and returns how many it sent. Scheduled late in a
// run, these land far behind the victims' advanced identification
// windows: auth_stale_id.
func (r *Replayer) ReplayCaptured(n int) int {
	if n > len(r.caps) {
		n = len(r.caps)
	}
	for i := 0; i < n; i++ {
		r.emit(r.caps[i])
	}
	return n
}

// Close removes the tap and releases the socket.
func (r *Replayer) Close() {
	r.StopCapture()
	r.sock.Close()
}

// rogueAdvLifetime is the visitor lifetime a rogue agent advertises.
const rogueAdvLifetime = 60

// lifetimeSkew is what the rogue adds to each relayed request's
// lifetime field. The exact value is irrelevant: any change to a
// covered byte invalidates the MAC.
const lifetimeSkew = 911

// RogueFA impersonates a foreign agent: it beacons agent
// advertisements, taps its segment the way a relay sees traffic, and
// re-emits captured registrations toward the home agent with inflated
// lifetimes — the "helpful" relay that quietly rewrites what it
// forwards.
type RogueFA struct {
	host      *stack.Host
	sock      *stack.UDPSocket
	seg       *netsim.Segment
	homeAgent ipv4.Addr
	skip      func(ipv4.Addr) bool
	max       int
	delay     vtime.Duration
	count     int
	seq       uint16

	// Tampered counts re-emitted (modified) registrations; Beacons
	// counts advertisements; Denials the replies the tampered relays
	// drew. Owned by the rogue's shard.
	Tampered uint64
	Beacons  uint64
	Denials  Denials
}

// NewRogueFA attaches a rogue agent to host, tapping seg and relaying
// tampered captures to the home agent at homeAgent after delay. Sources
// for which skip returns true are ignored; at most maxCaptures
// requests are relayed.
func NewRogueFA(host *stack.Host, seg *netsim.Segment, homeAgent ipv4.Addr, maxCaptures int, delay vtime.Duration, skip func(ipv4.Addr) bool) (*RogueFA, error) {
	rg := &RogueFA{host: host, seg: seg, homeAgent: homeAgent, skip: skip, max: maxCaptures, delay: delay}
	sock, err := host.OpenUDP(ipv4.Zero, 0, func(_ ipv4.Addr, _ uint16, _ ipv4.Addr, payload []byte) {
		rg.Denials.observe(payload)
	})
	if err != nil {
		return nil, err
	}
	rg.sock = sock
	return rg, nil
}

// Host returns the attacker's host (for scheduling on its shard).
func (rg *RogueFA) Host() *stack.Host { return rg.host }

// Addr returns the rogue agent's address.
func (rg *RogueFA) Addr() ipv4.Addr { return rg.host.FirstAddr() }

// StartRelay installs the tap, replacing any previous fault hook on the
// segment.
func (rg *RogueFA) StartRelay() { rg.seg.SetFaultHook(rg.verdict) }

// StopRelay removes the tap.
func (rg *RogueFA) StopRelay() { rg.seg.SetFaultHook(nil) }

func (rg *RogueFA) verdict(f netsim.Frame) netsim.Impairment {
	if rg.count >= rg.max {
		return netsim.Impairment{}
	}
	src, _, payload, ok := registrationRequest(f)
	if !ok || (rg.skip != nil && rg.skip(src)) {
		return netsim.Impairment{}
	}
	// Copy (no-retention rule), then inflate the lifetime. Bytes 2..3 of
	// a registration request are its lifetime field; the MAC, if any,
	// covers them, so the modification is detectable — that is the
	// point.
	b := append([]byte(nil), payload...)
	binary.BigEndian.PutUint16(b[2:4], binary.BigEndian.Uint16(b[2:4])+lifetimeSkew)
	rg.count++
	rg.host.Sched().After(rg.delay, func() { rg.relay(b) })
	return netsim.Impairment{}
}

// relay sends one tampered capture to the home agent from the rogue's
// own address, the way a real relay would forward it.
func (rg *RogueFA) relay(b []byte) {
	rg.Tampered++
	_ = rg.sock.SendToFrom(rg.Addr(), rg.homeAgent, udp.PortRegistration, b)
}

// AdvertiseOnce broadcasts one foreign-agent advertisement, luring
// zero-configuration visitors toward an agent that will tamper with
// their registrations. Fleet nodes attach by explicit command and
// ignore it; the beacon documents the lure and exercises the broadcast
// path under attack.
func (rg *RogueFA) AdvertiseOnce() {
	rg.seq++
	rg.Beacons++
	adv := mobileip.Advertisement{
		Agent:    rg.Addr(),
		Flags:    mobileip.AdvFlagFA,
		Lifetime: rogueAdvLifetime,
		Sequence: rg.seq,
	}
	_ = rg.sock.SendToFrom(rg.Addr(), ipv4.Broadcast, mobileip.PortAgentAdvert, adv.Marshal())
}

// Close removes the tap and releases the socket.
func (rg *RogueFA) Close() {
	rg.StopRelay()
	rg.sock.Close()
}
