// Package faults is the deterministic fault-injection subsystem: a
// vtime-scheduled fault plan plus reusable link- and node-level
// impairments for the netsim/mobileip stack.
//
// The paper's argument (Sections 4-6) is that the best of the 4x4 modes
// shifts as the network turns hostile — filters appear, tunnels break,
// agents die. The steady-state simulator can only express uniform random
// loss; this package expresses the hostile transitions: Gilbert-Elliott
// burst loss, duplication, reordering, bit corruption, source-address
// blackholes (ingress filtering appearing mid-conversation), link
// partition windows, agent crashes and interface bounces.
//
// Determinism contract: every random draw comes from the simulation
// scheduler's RNG, every fault fires at a scheduled virtual time, and
// the injector log records what happened when. Two runs with the same
// seed and the same plan produce byte-identical traces; a segment with
// no hook installed pays one nil-check per frame and nothing else.
package faults

import (
	"fmt"
	"strings"

	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

// Injector owns a simulation's fault plan: a set of scheduled fault
// actions and the vtime-stamped log of everything that fired. One
// injector per Sim.
type Injector struct {
	sim *netsim.Sim
	log []string
}

// NewInjector returns an injector for sim with an empty plan.
func NewInjector(sim *netsim.Sim) *Injector {
	return &Injector{sim: sim}
}

// Sim returns the owning simulation.
func (inj *Injector) Sim() *netsim.Sim { return inj.sim }

// At schedules fn at absolute virtual time at. When it fires, the action
// is logged (vtime-stamped, and mirrored as an EventNote in the trace)
// before fn runs.
func (inj *Injector) At(at vtime.Time, what string, fn func()) {
	inj.sim.Sched.At(at, func() {
		inj.note(what)
		if fn != nil {
			fn()
		}
	})
}

// After schedules fn after a delay from now, with the same logging as At.
func (inj *Injector) After(d vtime.Duration, what string, fn func()) {
	inj.At(inj.sim.Now().Add(d), what, fn)
}

func (inj *Injector) note(what string) {
	inj.log = append(inj.log, fmt.Sprintf("%d %s", int64(inj.sim.Now()), what))
	inj.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventNote, Time: inj.sim.Now(), Where: "faults",
		Detail: what,
	})
}

// Log returns the fired-fault log: one "<vtime-ns> <action>" line per
// fault action, in firing order. Deterministic per seed and plan.
func (inj *Injector) Log() []string { return inj.log }

// LogText renders the log as one newline-joined block (trailing newline
// when non-empty), for experiment output.
func (inj *Injector) LogText() string {
	if len(inj.log) == 0 {
		return ""
	}
	return strings.Join(inj.log, "\n") + "\n"
}
