// Package inet builds simulated internetworks: LANs (broadcast segments
// with an address plan), routers, point-to-point backbone links, and
// administrative domains with boundary filtering. It computes shortest
// paths over the router graph and installs static routes everywhere, so
// experiments declare topology and get a working internet.
//
// This package plays the role of the "simulated topology with netns" the
// reproduction banding calls for — the same isolation and wiring netns
// scripts provide on Linux, done deterministically in-process.
package inet

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// Network is an internetwork under construction (and then in operation).
// A network is either single-region (New: one Sim, one scheduler) or
// sharded (NewSharded: one Sim per region shard of a vtime.Group, with
// cross-region links built as split segment pairs).
type Network struct {
	// Sim is the hub region's simulation — the only one for a
	// single-region network.
	Sim *netsim.Sim

	// regions lists every region Sim (just Sim for single-region
	// networks); buildSim is the region new LANs and routers go to,
	// moved by SetBuildRegion.
	regions  []*netsim.Sim
	buildSim *netsim.Sim
	group    *vtime.Group

	lans    map[string]*LAN
	hosts   map[string]*stack.Host
	routers map[string]*stack.Host
	links   []*p2pLink

	transferNet uint32 // allocator for /30 point-to-point prefixes
}

// LAN is a broadcast segment with an address plan and (usually) a gateway
// router.
type LAN struct {
	Name     string
	Seg      *netsim.Segment
	Prefix   ipv4.Prefix
	nextHost int
	Gateway  ipv4.Addr // first router address attached; zero until then
	net      *Network
}

type p2pLink struct {
	// segA/segB are the link's segments as seen from each end: the same
	// Segment for an intra-region link, the two halves of a SplitPair for
	// a cross-region one.
	segA   *netsim.Segment
	segB   *netsim.Segment
	prefix ipv4.Prefix
	a, b   *stack.Host
	aAddr  ipv4.Addr
	bAddr  ipv4.Addr
}

// New creates an empty network with a deterministic seed.
func New(seed int64) *Network {
	sim := netsim.NewSim(seed)
	return &Network{
		Sim:         sim,
		regions:     []*netsim.Sim{sim},
		buildSim:    sim,
		lans:        make(map[string]*LAN),
		hosts:       make(map[string]*stack.Host),
		routers:     make(map[string]*stack.Host),
		transferNet: ipv4.MustParseAddr("10.200.0.0").Uint32(),
	}
}

// NewSharded creates a network whose topology spans region Sims — one per
// shard of a vtime.Group (all sims' schedulers must belong to the same
// group). sims[0] is the hub region and the initial build region. Links
// between hosts in different regions become split segment pairs
// synchronized by the link latency.
func NewSharded(sims []*netsim.Sim) *Network {
	if len(sims) == 0 {
		assert.Unreachable("inet: NewSharded with no region sims")
	}
	g := sims[0].Sched.Group()
	for _, s := range sims {
		if s.Sched.Group() != g || g == nil {
			assert.Unreachable("inet: NewSharded sims must share one vtime.Group")
		}
	}
	return &Network{
		Sim:         sims[0],
		regions:     sims,
		buildSim:    sims[0],
		group:       g,
		lans:        make(map[string]*LAN),
		hosts:       make(map[string]*stack.Host),
		routers:     make(map[string]*stack.Host),
		transferNet: ipv4.MustParseAddr("10.200.0.0").Uint32(),
	}
}

// SetBuildRegion moves the build cursor: subsequent AddLAN/AddRouter
// calls create their objects in region i's Sim. Single-region networks
// have exactly one region.
func (n *Network) SetBuildRegion(i int) {
	n.buildSim = n.regions[i]
}

// Regions returns the network's region sims in shard order.
func (n *Network) Regions() []*netsim.Sim { return n.regions }

// Group returns the shard group a sharded network runs on, nil for a
// single-region network.
func (n *Network) Group() *vtime.Group { return n.group }

// Sched returns the simulation scheduler (the hub region's, for sharded
// networks — cross-region driving goes through Group).
func (n *Network) Sched() *vtime.Scheduler { return n.Sim.Sched }

// Run drains the event queue (serially for sharded networks; storm
// drivers that want parallelism call Group().Run themselves).
func (n *Network) Run() {
	if n.group != nil {
		n.group.Run(1)
		return
	}
	n.Sim.Sched.Run()
}

// RunFor advances virtual time by d.
func (n *Network) RunFor(d vtime.Duration) {
	if n.group != nil {
		n.group.RunUntil(n.group.Now().Add(d), 1)
		return
	}
	n.Sim.Sched.RunFor(d)
}

// AddLAN creates a broadcast segment with the given prefix and link
// options.
func (n *Network) AddLAN(name, prefix string, opts netsim.SegmentOpts) *LAN {
	p := ipv4.MustParsePrefix(prefix)
	if _, dup := n.lans[name]; dup {
		assert.Unreachable("inet: duplicate LAN %q", name)
	}
	lan := &LAN{
		Name:     name,
		Seg:      n.buildSim.NewSegment(name, opts),
		Prefix:   p,
		nextHost: 0,
		net:      n,
	}
	n.lans[name] = lan
	return lan
}

// LANByName returns a LAN previously added.
func (n *Network) LANByName(name string) *LAN { return n.lans[name] }

// NextAddr allocates the next host address on the LAN.
func (l *LAN) NextAddr() ipv4.Addr {
	l.nextHost++
	return l.Prefix.Host(l.nextHost)
}

// AddRouter creates a forwarding host.
func (n *Network) AddRouter(name string) *stack.Host {
	if _, dup := n.routers[name]; dup {
		assert.Unreachable("inet: duplicate router %q", name)
	}
	r := stack.NewHost(n.buildSim, name)
	r.Forwarding = true
	n.routers[name] = r
	return r
}

// AddHost creates a non-forwarding host on a LAN with an auto-allocated
// address and a default route via the LAN gateway (panics if the LAN has
// no gateway yet — attach a router first).
func (n *Network) AddHost(name string, lan *LAN) *stack.Host {
	if _, dup := n.hosts[name]; dup {
		assert.Unreachable("inet: duplicate host %q", name)
	}
	// The host lives in the region that owns its LAN, whatever the build
	// cursor says: a host's NICs, timers and traces must all stay on the
	// shard its segment belongs to.
	h := stack.NewHost(lan.Seg.Sim(), name)
	addr := lan.NextAddr()
	ifc := h.AddIface("eth0", lan.Seg, addr, lan.Prefix)
	if !lan.Gateway.IsZero() {
		h.Routes().AddDefault(ifc, lan.Gateway)
	}
	n.hosts[name] = h
	return h
}

// AddMobileHost creates a host on a LAN like AddHost but returns the
// interface too (mobility code reconfigures it).
func (n *Network) AddMobileHost(name string, lan *LAN) (*stack.Host, *stack.Iface) {
	h := n.AddHost(name, lan)
	return h, h.Ifaces()[0]
}

// Host returns a host by name (nil if absent).
func (n *Network) Host(name string) *stack.Host { return n.hosts[name] }

// Router returns a router by name (nil if absent).
func (n *Network) Router(name string) *stack.Host { return n.routers[name] }

// AttachRouter puts a router on a LAN with an auto-allocated address; the
// first router attached becomes the LAN's gateway.
func (n *Network) AttachRouter(r *stack.Host, lan *LAN) *stack.Iface {
	addr := lan.NextAddr()
	ifc := r.AddIface("lan-"+lan.Name, lan.Seg, addr, lan.Prefix)
	if lan.Gateway.IsZero() {
		lan.Gateway = addr
	}
	return ifc
}

// Link joins two routers with a point-to-point segment (a /30 transfer
// network) of the given latency. When the endpoints live in different
// region Sims the link is built as a split segment pair — the link
// latency becomes the shard pair's conservative lookahead window, so it
// must be positive for such links. Returns nothing; ComputeRoutes uses
// the recorded link.
func (n *Network) Link(a, b *stack.Host, latency vtime.Duration) {
	n.transferNet += 4
	p := ipv4.PrefixFrom(ipv4.AddrFromUint32(n.transferNet), 30)
	name := fmt.Sprintf("p2p-%s-%s", a.Name(), b.Name())
	var segA, segB *netsim.Segment
	if a.Sim() != b.Sim() {
		var err error
		segA, segB, err = netsim.SplitPair(a.Sim(), b.Sim(), name, netsim.SegmentOpts{Latency: latency})
		assert.NoError(err, "inet: cross-region link "+name)
	} else {
		seg := a.Sim().NewSegment(name, netsim.SegmentOpts{Latency: latency})
		segA, segB = seg, seg
	}
	aAddr := p.Host(1)
	bAddr := p.Host(2)
	a.AddIface("to-"+b.Name(), segA, aAddr, p)
	b.AddIface("to-"+a.Name(), segB, bAddr, p)
	n.links = append(n.links, &p2pLink{segA: segA, segB: segB, prefix: p, a: a, b: b, aAddr: aAddr, bAddr: bAddr})
}

// Chain creates count routers named prefix0..prefixN-1, links them in a
// path with the given per-link latency, and returns them in order. Used
// for the Figure 4 distance sweeps.
func (n *Network) Chain(prefix string, count int, latency vtime.Duration) []*stack.Host {
	rs := make([]*stack.Host, count)
	for i := range rs {
		rs[i] = n.AddRouter(fmt.Sprintf("%s%d", prefix, i))
		if i > 0 {
			n.Link(rs[i-1], rs[i], latency)
		}
	}
	return rs
}

// SetBoundaryFilter configures router r as the boundary of a domain with
// the given inside prefixes and filter switches, and tags its interfaces
// inside/outside by whether their address falls in the domain.
func (n *Network) SetBoundaryFilter(r *stack.Host, ingress, egress bool, insidePrefixes ...string) *stack.FilterPolicy {
	pol := &stack.FilterPolicy{
		IngressSourceFilter: ingress,
		EgressSourceFilter:  egress,
	}
	for _, s := range insidePrefixes {
		pol.DomainPrefixes = append(pol.DomainPrefixes, ipv4.MustParsePrefix(s))
	}
	r.Filter = pol
	for _, ifc := range r.Ifaces() {
		ifc.Outside = !pol.Inside(ifc.Addr())
	}
	return pol
}

// adjacency returns the neighbor map over routers: peer router -> the
// address we use to reach it (its address on the shared link/LAN).
func (n *Network) adjacency() map[*stack.Host]map[*stack.Host]neighbor {
	adj := make(map[*stack.Host]map[*stack.Host]neighbor)
	add := func(from, to *stack.Host, via *stack.Iface, toAddr ipv4.Addr) {
		m := adj[from]
		if m == nil {
			m = make(map[*stack.Host]neighbor)
			adj[from] = m
		}
		// Keep the first (deterministic) adjacency for a pair.
		if _, ok := m[to]; !ok {
			m[to] = neighbor{iface: via, addr: toAddr}
		}
	}
	// Point-to-point links (each end sees its own half of a split link).
	for _, l := range n.links {
		add(l.a, l.b, ifaceOn(l.a, l.segA), l.bAddr)
		add(l.b, l.a, ifaceOn(l.b, l.segB), l.aAddr)
	}
	// Routers sharing a LAN are adjacent too.
	routers := n.sortedRouters()
	var attached []*stack.Host
	for _, lan := range n.sortedLANs() {
		attached = attached[:0]
		for _, r := range routers {
			if ifaceOn(r, lan.Seg) != nil {
				attached = append(attached, r)
			}
		}
		for _, r1 := range attached {
			for _, r2 := range attached {
				if r1 != r2 {
					add(r1, r2, ifaceOn(r1, lan.Seg), ifaceOn(r2, lan.Seg).Addr())
				}
			}
		}
	}
	return adj
}

type neighbor struct {
	iface *stack.Iface
	addr  ipv4.Addr
}

func ifaceOn(h *stack.Host, seg *netsim.Segment) *stack.Iface {
	for _, ifc := range h.Ifaces() {
		if ifc.NIC().Segment() == seg {
			return ifc
		}
	}
	return nil
}

func (n *Network) sortedRouters() []*stack.Host {
	rs := make([]*stack.Host, 0, len(n.routers))
	for _, r := range n.routers {
		rs = append(rs, r)
	}
	slices.SortFunc(rs, func(a, b *stack.Host) int { return strings.Compare(a.Name(), b.Name()) })
	return rs
}

// sortedLANs returns the LANs in name order. Adjacency edges and route
// candidates are discovered by walking LANs, so the walk order must not
// come from the map.
func (n *Network) sortedLANs() []*LAN {
	names := make([]string, 0, len(n.lans))
	for name := range n.lans {
		names = append(names, name)
	}
	sort.Strings(names)
	ls := make([]*LAN, 0, len(names))
	for _, name := range names {
		ls = append(ls, n.lans[name])
	}
	return ls
}

// ComputeRoutes installs shortest-path (hop count) routes on every router
// for every LAN prefix and transfer net, and default routes on hosts via
// their LAN gateway. Call after the topology is complete; call again
// after changing it.
func (n *Network) ComputeRoutes() {
	adj := n.adjacency()
	routers := n.sortedRouters()

	// Destination prefixes and the routers directly attached to each.
	type dest struct {
		prefix   ipv4.Prefix
		attached []*stack.Host
	}
	var dests []dest
	for _, lan := range n.sortedLANs() {
		d := dest{prefix: lan.Prefix}
		for _, r := range routers {
			if ifaceOn(r, lan.Seg) != nil {
				d.attached = append(d.attached, r)
			}
		}
		dests = append(dests, d)
	}
	for _, l := range n.links {
		dests = append(dests, dest{prefix: l.prefix, attached: []*stack.Host{l.a, l.b}})
	}

	// BFS from every router, reusing the scratch structures across
	// sources (clear() keeps map buckets allocated).
	var peers []*stack.Host
	dist := make(map[*stack.Host]int, len(routers))
	first := make(map[*stack.Host]neighbor, len(routers)) // first hop on path to each router
	queue := make([]*stack.Host, 0, len(routers))
	for _, src := range routers {
		clear(dist)
		clear(first)
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// Deterministic neighbor order.
			peers = peers[:0]
			for p := range adj[cur] {
				peers = append(peers, p)
			}
			slices.SortFunc(peers, func(a, b *stack.Host) int { return strings.Compare(a.Name(), b.Name()) })
			for _, p := range peers {
				if _, seen := dist[p]; seen {
					continue
				}
				dist[p] = dist[cur] + 1
				if cur == src {
					first[p] = adj[src][p]
				} else {
					first[p] = first[cur]
				}
				queue = append(queue, p)
			}
		}

		// For each destination prefix, route via the nearest attached
		// router.
		for _, d := range dests {
			attachedHere := false
			for _, r := range d.attached {
				if r == src {
					attachedHere = true
					break
				}
			}
			if attachedHere {
				continue // connected route already present
			}
			bestDist := -1
			var bestVia neighbor
			for _, r := range d.attached {
				dd, ok := dist[r]
				if !ok {
					continue
				}
				if bestDist < 0 || dd < bestDist {
					bestDist = dd
					bestVia = first[r]
				}
			}
			if bestDist < 0 {
				continue // unreachable; leave no route
			}
			src.Routes().Remove(d.prefix)
			src.Routes().Add(stack.Route{
				Prefix:  d.prefix,
				NextHop: bestVia.addr,
				Iface:   bestVia.iface,
				Metric:  10 + bestDist,
			})
		}
	}

	// Hosts: refresh default routes via their LAN gateway (AddHost may
	// have run before the gateway existed).
	hostNames := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)
	for _, name := range hostNames {
		h := n.hosts[name]
		ifc := h.Ifaces()[0]
		for _, lan := range n.sortedLANs() {
			if lan.Seg == ifc.NIC().Segment() && !lan.Gateway.IsZero() {
				h.Routes().Remove(ipv4.Prefix{})
				h.Routes().AddDefault(ifc, lan.Gateway)
			}
		}
	}
}
