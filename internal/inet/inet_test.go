package inet

import (
	"testing"

	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

const ms = vtime.Duration(1e6)

// buildTriangle: three LANs, three gateways, a 2-router backbone path.
func buildTriangle(t testing.TB) (*Network, [3]*LAN) {
	t.Helper()
	n := New(1)
	var lans [3]*LAN
	lans[0] = n.AddLAN("l0", "10.0.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	lans[1] = n.AddLAN("l1", "10.1.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	lans[2] = n.AddLAN("l2", "10.2.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	g0 := n.AddRouter("g0")
	g1 := n.AddRouter("g1")
	g2 := n.AddRouter("g2")
	n.AttachRouter(g0, lans[0])
	n.AttachRouter(g1, lans[1])
	n.AttachRouter(g2, lans[2])
	bb := n.Chain("bb", 2, 5*ms)
	n.Link(g0, bb[0], 5*ms)
	n.Link(g1, bb[1], 5*ms)
	n.Link(g2, bb[1], 5*ms)
	return n, lans
}

func pingOK(t testing.TB, n *Network, from, to string) (bool, vtime.Duration) {
	t.Helper()
	src := n.Host(from)
	dst := n.Host(to)
	ic := icmphost.Install(src)
	icmphost.Install(dst)
	start := n.Sim.Now()
	var rtt vtime.Duration
	ok := false
	ic.OnEchoReply = func(a ipv4.Addr, m icmp.Message) {
		ok = true
		rtt = n.Sim.Now().Sub(start)
	}
	_ = ic.Ping(ipv4.Zero, dst.FirstAddr(), 1, 1, nil)
	n.RunFor(5e9)
	return ok, rtt
}

func TestComputeRoutesConnectsEverything(t *testing.T) {
	n, lans := buildTriangle(t)
	n.AddHost("h0", lans[0])
	n.AddHost("h1", lans[1])
	n.AddHost("h2", lans[2])
	n.ComputeRoutes()

	for _, pair := range [][2]string{{"h0", "h1"}, {"h1", "h2"}, {"h0", "h2"}, {"h2", "h0"}} {
		if ok, _ := pingOK(t, n, pair[0], pair[1]); !ok {
			t.Errorf("%s cannot reach %s", pair[0], pair[1])
		}
	}
}

func TestShortestPathChosen(t *testing.T) {
	// l0's gateway connects to bb0; l2's to bb1. h0->h2 must cross
	// exactly g0, bb0, bb1, g2 = 4 router hops.
	n, lans := buildTriangle(t)
	n.AddHost("h0", lans[0])
	n.AddHost("h2", lans[2])
	n.ComputeRoutes()
	ok, _ := pingOK(t, n, "h0", "h2")
	if !ok {
		t.Fatal("unreachable")
	}
	// Count forwards of the request via the tracer.
	var reqID uint64
	for _, e := range n.Sim.Trace.Events() {
		if e.Kind == netsim.EventSend && e.Where == "h0" {
			reqID = e.PktID
			break
		}
	}
	if hops := n.Sim.Trace.Hops(reqID); hops != 4 {
		t.Errorf("hops = %d, want 4\npath: %s", hops, n.Sim.Trace.Path(reqID))
	}
}

func TestRoutersOnSharedLANAreAdjacent(t *testing.T) {
	n := New(1)
	shared := n.AddLAN("shared", "10.9.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	edge1 := n.AddLAN("e1", "10.1.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	edge2 := n.AddLAN("e2", "10.2.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	r1 := n.AddRouter("r1")
	r2 := n.AddRouter("r2")
	n.AttachRouter(r1, edge1)
	n.AttachRouter(r1, shared)
	n.AttachRouter(r2, shared)
	n.AttachRouter(r2, edge2)
	n.AddHost("h1", edge1)
	n.AddHost("h2", edge2)
	n.ComputeRoutes()
	if ok, _ := pingOK(t, n, "h1", "h2"); !ok {
		t.Error("no route across a shared LAN")
	}
}

func TestChain(t *testing.T) {
	n := New(1)
	rs := n.Chain("c", 5, ms)
	if len(rs) != 5 {
		t.Fatalf("chain = %d", len(rs))
	}
	for i, r := range rs {
		if r == nil || !r.Forwarding {
			t.Errorf("router %d broken", i)
		}
	}
	// 4 links created -> each end router has 1 iface, middles have 2.
	if got := len(rs[0].Ifaces()); got != 1 {
		t.Errorf("end router ifaces = %d", got)
	}
	if got := len(rs[2].Ifaces()); got != 2 {
		t.Errorf("middle router ifaces = %d", got)
	}
}

func TestLatencyAccumulates(t *testing.T) {
	n, lans := buildTriangle(t)
	n.AddHost("h0", lans[0])
	n.AddHost("h2", lans[2])
	n.ComputeRoutes()
	// First ping warms the ARP caches along the path (its RTT includes
	// the resolution round trips).
	if ok, _ := pingOK(t, n, "h0", "h2"); !ok {
		t.Fatal("unreachable")
	}
	ok, rtt := pingOK(t, n, "h0", "h2")
	if !ok {
		t.Fatal("unreachable on second ping")
	}
	// One-way: 1ms LAN + 5ms + 5ms + 5ms + 1ms LAN = 17ms; RTT = 34ms.
	if rtt != 34*ms {
		t.Errorf("warm rtt = %v, want 34ms", rtt)
	}
}

func TestSetBoundaryFilterTagsInterfaces(t *testing.T) {
	n, lans := buildTriangle(t)
	g0 := n.Router("g0")
	pol := n.SetBoundaryFilter(g0, true, true, "10.0.0.0/24")
	if pol == nil || g0.Filter != pol {
		t.Fatal("policy not installed")
	}
	var inside, outside int
	for _, ifc := range g0.Ifaces() {
		if ifc.Outside {
			outside++
		} else {
			inside++
		}
	}
	if inside != 1 || outside != 1 {
		t.Errorf("inside=%d outside=%d, want 1/1", inside, outside)
	}
	_ = lans
}

func TestAddressAllocation(t *testing.T) {
	n := New(1)
	lan := n.AddLAN("lan", "10.0.0.0/24", netsim.SegmentOpts{})
	gw := n.AddRouter("gw")
	n.AttachRouter(gw, lan)
	if lan.Gateway != ipv4.MustParseAddr("10.0.0.1") {
		t.Errorf("gateway = %s", lan.Gateway)
	}
	h1 := n.AddHost("h1", lan)
	h2 := n.AddHost("h2", lan)
	if h1.FirstAddr() != ipv4.MustParseAddr("10.0.0.2") ||
		h2.FirstAddr() != ipv4.MustParseAddr("10.0.0.3") {
		t.Errorf("host addrs = %s, %s", h1.FirstAddr(), h2.FirstAddr())
	}
}

func TestDuplicateNamesPanic(t *testing.T) {
	n := New(1)
	n.AddLAN("lan", "10.0.0.0/24", netsim.SegmentOpts{})
	assertPanics(t, func() { n.AddLAN("lan", "10.1.0.0/24", netsim.SegmentOpts{}) })
	n.AddRouter("r")
	assertPanics(t, func() { n.AddRouter("r") })
	gw := n.AddRouter("gw")
	n.AttachRouter(gw, n.LANByName("lan"))
	n.AddHost("h", n.LANByName("lan"))
	assertPanics(t, func() { n.AddHost("h", n.LANByName("lan")) })
}

func assertPanics(t testing.TB, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestLookupAccessors(t *testing.T) {
	n, lans := buildTriangle(t)
	if n.LANByName("l0") != lans[0] || n.LANByName("nope") != nil {
		t.Error("LANByName")
	}
	if n.Router("g0") == nil || n.Router("nope") != nil {
		t.Error("Router")
	}
	n.AddHost("h", lans[0])
	if n.Host("h") == nil || n.Host("nope") != nil {
		t.Error("Host")
	}
	if n.Sched() == nil {
		t.Error("Sched")
	}
}
