package encap

import (
	"bytes"
	"testing"

	"mob4x4/internal/ipv4"
)

var (
	compactHome   = ipv4.AddrFrom(36, 1, 1, 3)
	compactCareOf = ipv4.AddrFrom(10, 3, 0, 18)
	compactCH     = ipv4.AddrFrom(17, 5, 0, 2)
	compactHA     = ipv4.AddrFrom(36, 1, 1, 2)
)

func compactInner(src, dst ipv4.Addr) ipv4.Packet {
	return ipv4.Packet{
		Header: ipv4.Header{
			TTL:      40,
			TOS:      3,
			ID:       777,
			Protocol: ipv4.ProtoUDP,
			Src:      src,
			Dst:      dst,
		},
		Payload: []byte("compact-payload"),
	}
}

// TestCompactElisionShapes pins the header size and the restored
// addressing for each of the tunnel shapes the fleet produces.
func TestCompactElisionShapes(t *testing.T) {
	tests := []struct {
		name     string
		codec    Compact // encapsulating end
		decap    Compact // decapsulating end
		home     ipv4.Addr
		src, dst ipv4.Addr // tunnel endpoints
		inner    ipv4.Packet
		overhead int
	}{
		{
			// Smart correspondent In-DE: outer source is the inner source
			// and the binding home is stated per call — both elided.
			name:  "correspondent-binding-tunnel",
			home:  compactHome,
			src:   compactCH,
			dst:   compactCareOf,
			inner: compactInner(compactCH, compactHome),
			decap: Compact{Home: compactHome}, overhead: 4,
		},
		{
			// HA In-IE: inner source (the CH) differs from the outer
			// source (the HA); destination is the binding home.
			name:  "ha-binding-tunnel",
			home:  compactHome,
			src:   compactHA,
			dst:   compactCareOf,
			inner: compactInner(compactCH, compactHome),
			decap: Compact{Home: compactHome}, overhead: 8,
		},
		{
			// MN Out-DE: tunnel ends at the inner destination; the home
			// source rides in the header.
			name:  "mn-direct-tunnel",
			src:   compactCareOf,
			dst:   compactCH,
			inner: compactInner(compactHome, compactCH),
			overhead: 8,
		},
		{
			// MN Out-IE reverse tunnel: nothing elidable — worst case.
			name:  "mn-reverse-tunnel",
			src:   compactCareOf,
			dst:   compactHA,
			inner: compactInner(compactHome, compactCH),
			overhead: 12,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			outer, err := tc.codec.AppendEncapHome(tc.inner, tc.src, tc.dst, tc.home, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := outer.TotalLen() - tc.inner.TotalLen(); got != tc.overhead {
				t.Errorf("overhead %d bytes, want %d", got, tc.overhead)
			}
			got, err := tc.decap.Decapsulate(outer)
			if err != nil {
				t.Fatal(err)
			}
			if got.Src != tc.inner.Src || got.Dst != tc.inner.Dst {
				t.Errorf("addressing %s->%s, want %s->%s", got.Src, got.Dst, tc.inner.Src, tc.inner.Dst)
			}
			if got.Protocol != tc.inner.Protocol || got.TTL != tc.inner.TTL ||
				got.TOS != tc.inner.TOS || got.ID != tc.inner.ID {
				t.Errorf("header fields changed across the round trip: %+v", got.Header)
			}
			if !bytes.Equal(got.Payload, tc.inner.Payload) {
				t.Errorf("payload changed across the round trip")
			}
		})
	}
}

// TestCompactInstanceHome checks the mobile-endpoint form: a codec
// constructed with Home elides and restores without the per-call hint.
func TestCompactInstanceHome(t *testing.T) {
	c := Compact{Home: compactHome}
	inner := compactInner(compactCH, compactHome)
	outer, err := c.AppendEncap(inner, compactHA, compactCareOf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := outer.TotalLen() - inner.TotalLen(); got != 8 {
		t.Fatalf("overhead %d bytes, want 8 (dst elided via instance Home)", got)
	}
	got, err := c.Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != compactHome {
		t.Fatalf("restored dst %s, want home %s", got.Dst, compactHome)
	}
}

// TestCompactDstHomeNeedsHome: a decapsulator with no Home must reject a
// dst-is-home header rather than guess an inner destination.
func TestCompactDstHomeNeedsHome(t *testing.T) {
	inner := compactInner(compactCH, compactHome)
	outer, err := Compact{}.AppendEncapHome(inner, compactHA, compactCareOf, compactHome, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Compact{}).Decapsulate(outer); err == nil {
		t.Fatal("decapsulated a dst-is-home header without a configured home")
	}
}

// TestCompactRejects pins the malformed-input edges.
func TestCompactRejects(t *testing.T) {
	c := Compact{}
	inner := compactInner(compactHome, compactCH)

	frag := inner
	frag.MoreFrags = true
	if _, err := c.Encapsulate(frag, compactCareOf, compactCH); err == nil {
		t.Error("encapsulated a fragment")
	}
	opts := inner
	opts.Options = []byte{1}
	if _, err := c.Encapsulate(opts, compactCareOf, compactCH); err == nil {
		t.Error("encapsulated IP options")
	}

	outer, err := c.Encapsulate(inner, compactCareOf, compactHA)
	if err != nil {
		t.Fatal(err)
	}
	wrongProto := outer
	wrongProto.Protocol = ipv4.ProtoIPIP
	if _, err := c.Decapsulate(wrongProto); err == nil {
		t.Error("decapsulated a non-compact protocol")
	}
	short := outer
	short.Payload = outer.Payload[:3]
	if _, err := c.Decapsulate(short); err == nil {
		t.Error("decapsulated a truncated header")
	}
	// A header claiming both address bytes but carrying none.
	lying := outer
	lying.Payload = append([]byte(nil), outer.Payload[:4]...)
	lying.Payload[1] = compactSrcPresent | compactDstPresent
	if _, err := c.Decapsulate(lying); err == nil {
		t.Error("decapsulated a header shorter than its flags claim")
	}
	corrupt := outer
	corrupt.Payload = append([]byte(nil), outer.Payload...)
	corrupt.Payload[4] ^= 0xff
	if _, err := c.Decapsulate(corrupt); err == nil {
		t.Error("decapsulated a corrupted header")
	}
	both := outer
	both.Payload = append([]byte(nil), outer.Payload...)
	both.Payload[1] = compactDstPresent | compactDstHome
	if _, err := c.Decapsulate(both); err == nil {
		t.Error("accepted mutually exclusive dst flags")
	}
}

// TestCompactMulticastInnerNotElided: a multicast inner destination (the
// HA's multicast relay path) never matches a unicast tunnel endpoint or
// home, so it must ride in the header explicitly.
func TestCompactMulticastInnerNotElided(t *testing.T) {
	group := ipv4.AddrFrom(224, 0, 1, 9)
	inner := compactInner(compactCH, group)
	outer, err := Compact{Home: compactHome}.AppendEncapHome(inner, compactHA, compactCareOf, compactHome, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Payload[1]&compactDstPresent == 0 {
		t.Fatal("multicast inner destination was elided")
	}
	got, err := Compact{Home: compactHome}.Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != group {
		t.Fatalf("restored dst %s, want %s", got.Dst, group)
	}
}

// TestAppendEncapHomeFallback: the package helper must degrade to plain
// AppendEncap for codecs without the HomeEncapper extension, and engage
// it through the Instrumented wrapper for codecs with it.
func TestAppendEncapHomeFallback(t *testing.T) {
	inner := compactInner(compactCH, compactHome)
	plain, err := AppendEncapHome(IPIP{}, inner, compactHA, compactCareOf, compactHome, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := IPIP{}.Encapsulate(inner, compactHA, compactCareOf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalLen() != want.TotalLen() {
		t.Errorf("IPIP fallback produced %d bytes, want %d", plain.TotalLen(), want.TotalLen())
	}

	wrapped := Instrument(Compact{}, nil, "mn") // nil registry: unwrapped
	if _, ok := wrapped.(Compact); !ok {
		t.Fatal("nil-registry Instrument should return the codec unwrapped")
	}
	out, err := AppendEncapHome(Compact{}, inner, compactHA, compactCareOf, compactHome, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TotalLen() - inner.TotalLen(); got != 8 {
		t.Errorf("home-aware helper overhead %d bytes, want 8", got)
	}
}
