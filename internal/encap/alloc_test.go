package encap

import (
	"bytes"
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/race"
)

// TestAppendEncapZeroAllocs pins the pooled tunnel path: wrapping an inner
// packet into a caller-provided buffer and unwrapping it in place must not
// allocate for any codec. This is what lets the mobile node, home agent and
// smart correspondent tunnel every packet through one recycled buffer.
func TestAppendEncapZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	inner := ipv4.Packet{
		Header: ipv4.Header{
			TTL:      ipv4.DefaultTTL,
			Protocol: ipv4.ProtoUDP,
			Src:      ipv4.AddrFrom(36, 1, 1, 3),
			Dst:      ipv4.AddrFrom(17, 5, 0, 2),
		},
		Payload: bytes.Repeat([]byte{0x5a}, 1000),
	}
	src := ipv4.AddrFrom(36, 22, 0, 5)
	dst := ipv4.AddrFrom(128, 9, 1, 4)
	for _, c := range All() {
		buf := make([]byte, 0, 2048)
		allocs := testing.AllocsPerRun(100, func() {
			outer, err := c.AppendEncap(inner, src, dst, buf)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decapsulate(outer)
			if err != nil {
				t.Fatal(err)
			}
			if got.Dst != inner.Dst || len(got.Payload) != len(inner.Payload) {
				t.Fatal("round trip mangled the inner packet")
			}
		})
		if allocs != 0 {
			t.Errorf("%s: AppendEncap+Decapsulate allocated %.1f times per run, want 0", c.Name(), allocs)
		}
	}
}
