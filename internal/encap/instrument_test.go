package encap

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
)

func TestInstrumentCountsSuccessOnly(t *testing.T) {
	reg := metrics.NewRegistry()
	c := Instrument(IPIP{}, reg, "ha")
	if c.Name() != "ipip" || c.Proto() != ipv4.ProtoIPIP || c.Overhead() != 20 {
		t.Fatal("wrapper must delegate identity methods")
	}
	inner := ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: ipv4.MustParseAddr("10.0.0.1"), Dst: ipv4.MustParseAddr("10.0.0.2"), TTL: 64},
		Payload: []byte("hello"),
	}
	src, dst := ipv4.MustParseAddr("192.0.2.1"), ipv4.MustParseAddr("192.0.2.2")

	outer, err := c.Encapsulate(inner, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendEncap(inner, src, dst, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decapsulate(outer); err != nil {
		t.Fatal(err)
	}
	// Failed decapsulation must not count.
	if _, err := c.Decapsulate(inner); err == nil {
		t.Fatal("expected decapsulation of a non-tunnel packet to fail")
	}

	if got := reg.Encaps.Value(); got != 2 {
		t.Fatalf("global encaps = %d, want 2", got)
	}
	if got := reg.Decaps.Value(); got != 1 {
		t.Fatalf("global decaps = %d, want 1", got)
	}
	if got := reg.Counter("ha/encaps").Value(); got != 2 {
		t.Fatalf("ha/encaps = %d, want 2", got)
	}
	if got := reg.Counter("ha/decaps").Value(); got != 1 {
		t.Fatalf("ha/decaps = %d, want 1", got)
	}
}

func TestInstrumentNilRegistryPassthrough(t *testing.T) {
	c := Instrument(GRE{}, nil, "mn")
	if _, ok := c.(GRE); !ok {
		t.Fatalf("nil registry must return the codec unwrapped, got %T", c)
	}
	ic := Instrument(MinEnc{}, metrics.NewRegistry(), "mn")
	w, ok := ic.(*Instrumented)
	if !ok {
		t.Fatalf("got %T, want *Instrumented", ic)
	}
	if _, ok := w.Unwrap().(MinEnc); !ok {
		t.Fatal("Unwrap must return the inner codec")
	}
}
