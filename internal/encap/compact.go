package encap

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// Compact is the route-optimization header-compression extension of
// Minimal Encapsulation: where minenc always carries the original
// destination (8 or 12 bytes), compact elides every inner address the
// decapsulating endpoint can reconstruct, shrinking the forwarding
// header to as little as 4 bytes:
//
//	b[0]   original protocol
//	b[1]   flags (src present / dst present / dst-is-home)
//	b[2:4] header checksum
//	b[4:8] original destination (only when dst present)
//	next 4 original source      (only when src present)
//
// Elision rules, applied per packet:
//
//   - The original source is omitted when it equals the outer source
//     (minenc's rule).
//   - The original destination is omitted when it equals the outer
//     destination — the Out-DE/In-DT shape, where the tunnel already
//     ends at the inner destination.
//   - The original destination is omitted with the dst-is-home flag
//     when it equals the tunnel's mobile home address — the binding
//     tunnel shape (HA or smart correspondent tunneling home-addressed
//     traffic to a care-of address). The encapsulator states the home
//     via AppendEncapHome (it knows the binding); the decapsulating
//     mobile endpoint restores its own configured Home. Both ends of a
//     binding tunnel therefore agree by construction; a decapsulator
//     without a Home rejects the flag instead of guessing.
//
// Like minimal encapsulation, compact cannot carry fragments or IP
// options. Overhead: 4–12 bytes (vs IPIP's 20).
type Compact struct {
	// Home, when non-zero, is the mobile home address this endpoint
	// encapsulates for and restores on decapsulation of dst-is-home
	// headers. Mobile nodes set it; agents and correspondents state the
	// per-binding home through AppendEncapHome instead.
	Home ipv4.Addr
}

const (
	compactSrcPresent = 0x80 // original source follows the header
	compactDstPresent = 0x40 // original destination follows the header
	compactDstHome    = 0x20 // original destination is the mobile's home
)

// Name implements Codec.
func (Compact) Name() string { return "compact" }

// Proto implements Codec.
func (Compact) Proto() uint8 { return ipv4.ProtoCompact }

// Overhead implements Codec.
func (Compact) Overhead() int { return 12 } // worst case: both addresses present

// Encapsulate implements Codec.
func (c Compact) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	return c.AppendEncap(inner, src, dst, nil)
}

// AppendEncap implements Codec.
func (c Compact) AppendEncap(inner ipv4.Packet, src, dst ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	return c.appendEncap(inner, src, dst, c.Home, buf)
}

// AppendEncapHome implements HomeEncapper: home is the binding's mobile
// home address, enabling dst elision for home-addressed inner packets.
// The decapsulating endpoint must be configured with the same Home.
func (c Compact) AppendEncapHome(inner ipv4.Packet, src, dst, home ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	if home.IsZero() {
		home = c.Home
	}
	return c.appendEncap(inner, src, dst, home, buf)
}

func (Compact) appendEncap(inner ipv4.Packet, src, dst, home ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	if inner.MoreFrags || inner.FragOffset != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: cannot encapsulate fragments")
	}
	if len(inner.Options) > 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: cannot carry IP options")
	}
	var flags uint8
	hlen := 4
	switch {
	case inner.Dst == dst:
		// The tunnel ends at the inner destination; the outer header
		// already carries it exactly.
	case !home.IsZero() && inner.Dst == home:
		flags |= compactDstHome
	default:
		flags |= compactDstPresent
		hlen += 4
	}
	srcPresent := inner.Src != src
	if srcPresent {
		flags |= compactSrcPresent
	}
	start := len(buf)
	need := hlen
	if srcPresent {
		need += 4
	}
	b := grow(buf, need+len(inner.Payload))[start:]
	b[0] = inner.Protocol
	b[1] = flags
	b[2], b[3] = 0, 0
	if flags&compactDstPresent != 0 {
		copy(b[4:8], inner.Dst[:])
	}
	if srcPresent {
		copy(b[hlen:hlen+4], inner.Src[:])
		hlen += 4
	}
	copy(b[hlen:], inner.Payload)
	binary.BigEndian.PutUint16(b[2:], ipv4.Checksum(b[:hlen]))
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoCompact,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL,
			TOS:      inner.TOS,
			ID:       inner.ID,
		},
		Payload: b,
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (c Compact) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoCompact {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: outer protocol %d is not compact encapsulation", outer.Protocol)
	}
	b := outer.Payload
	if len(b) < 4 {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: truncated header (%d bytes)", len(b))
	}
	flags := b[1]
	if flags&compactDstPresent != 0 && flags&compactDstHome != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: dst-present and dst-is-home are mutually exclusive")
	}
	hlen := 4
	if flags&compactDstPresent != 0 {
		hlen += 4
	}
	srcOff := hlen
	if flags&compactSrcPresent != 0 {
		hlen += 4
	}
	if len(b) < hlen {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: truncated header (%d bytes)", len(b))
	}
	if ipv4.Checksum(b[:hlen]) != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/compact: header checksum mismatch")
	}
	inner := ipv4.Packet{
		Header: ipv4.Header{
			Protocol: b[0],
			TTL:      outer.TTL,
			TOS:      outer.TOS,
			ID:       outer.ID,
			Src:      outer.Src,
			Dst:      outer.Dst,
		},
		Payload: b[hlen:],
		TraceID: outer.TraceID,
	}
	switch {
	case flags&compactDstPresent != 0:
		copy(inner.Dst[:], b[4:8])
	case flags&compactDstHome != 0:
		if c.Home.IsZero() {
			return ipv4.Packet{}, fmt.Errorf("encap/compact: dst-is-home header at an endpoint with no home configured")
		}
		inner.Dst = c.Home
	}
	if flags&compactSrcPresent != 0 {
		copy(inner.Src[:], b[srcOff:srcOff+4])
	}
	return inner, nil
}
