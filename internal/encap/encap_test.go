package encap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

var (
	home = ipv4.MustParseAddr("36.1.1.3")
	coa  = ipv4.MustParseAddr("128.9.1.4")
	ha   = ipv4.MustParseAddr("36.1.1.2")
	ch   = ipv4.MustParseAddr("17.5.0.2")
)

func innerPacket(payload []byte) ipv4.Packet {
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoTCP, Src: home, Dst: ch, TTL: 60, ID: 7, TOS: 2,
		},
		Payload: payload,
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, codec := range All() {
		t.Run(codec.Name(), func(t *testing.T) {
			in := innerPacket([]byte("payload bytes"))
			outer, err := codec.Encapsulate(in, coa, ha)
			if err != nil {
				t.Fatal(err)
			}
			if outer.Src != coa || outer.Dst != ha {
				t.Errorf("outer addresses %s > %s", outer.Src, outer.Dst)
			}
			if outer.Protocol != codec.Proto() {
				t.Errorf("outer protocol %d, want %d", outer.Protocol, codec.Proto())
			}
			got, err := codec.Decapsulate(outer)
			if err != nil {
				t.Fatal(err)
			}
			if got.Src != in.Src || got.Dst != in.Dst || got.Protocol != in.Protocol {
				t.Errorf("inner header mismatch: %+v", got.Header)
			}
			if !bytes.Equal(got.Payload, in.Payload) {
				t.Error("payload mismatch")
			}
		})
	}
}

func TestOverheadExactBytes(t *testing.T) {
	in := innerPacket(make([]byte, 1000))
	// compact: src preserved in the outer header, dst carried -> 8B.
	want := map[string]int{"ipip": 20, "minenc": 8, "gre": 24, "compact": 8}
	for _, codec := range All() {
		outer, err := codec.Encapsulate(in, home, ha) // minenc: src preserved -> 8B
		if err != nil {
			t.Fatal(err)
		}
		added := outer.TotalLen() - in.TotalLen()
		if added != want[codec.Name()] {
			t.Errorf("%s added %d bytes, want %d", codec.Name(), added, want[codec.Name()])
		}
		if added > codec.Overhead() {
			t.Errorf("%s measured overhead %d exceeds declared %d", codec.Name(), added, codec.Overhead())
		}
	}
}

func TestMinEncSourcePresent(t *testing.T) {
	in := innerPacket(make([]byte, 100))
	// Outer source differs from inner source: the 12-byte form.
	outer, err := MinEnc{}.Encapsulate(in, coa, ha)
	if err != nil {
		t.Fatal(err)
	}
	if added := outer.TotalLen() - in.TotalLen(); added != 12 {
		t.Errorf("src-present overhead = %d, want 12", added)
	}
	got, err := MinEnc{}.Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != home {
		t.Errorf("inner source lost: %s", got.Src)
	}
	// Same source: the 8-byte form, source reconstructed from outer.
	outer2, err := MinEnc{}.Encapsulate(in, home, ha)
	if err != nil {
		t.Fatal(err)
	}
	if added := outer2.TotalLen() - in.TotalLen(); added != 8 {
		t.Errorf("src-absent overhead = %d, want 8", added)
	}
	got2, err := MinEnc{}.Decapsulate(outer2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Src != home {
		t.Errorf("inner source not reconstructed: %s", got2.Src)
	}
}

func TestMinEncRejectsFragmentsAndOptions(t *testing.T) {
	in := innerPacket(make([]byte, 100))
	in.MoreFrags = true
	if _, err := (MinEnc{}).Encapsulate(in, coa, ha); err == nil {
		t.Error("fragment accepted")
	}
	in = innerPacket(make([]byte, 100))
	in.FragOffset = 8
	if _, err := (MinEnc{}).Encapsulate(in, coa, ha); err == nil {
		t.Error("offset fragment accepted")
	}
	in = innerPacket(make([]byte, 100))
	in.Options = []byte{1, 2, 3, 4}
	if _, err := (MinEnc{}).Encapsulate(in, coa, ha); err == nil {
		t.Error("options accepted")
	}
}

func TestMinEncChecksumValidation(t *testing.T) {
	in := innerPacket(make([]byte, 50))
	outer, _ := MinEnc{}.Encapsulate(in, coa, ha)
	outer.Payload[4] ^= 0xff // corrupt the forwarding header
	if _, err := (MinEnc{}).Decapsulate(outer); err == nil {
		t.Error("corrupted minenc header accepted")
	}
}

func TestGREKey(t *testing.T) {
	in := innerPacket(make([]byte, 100))
	keyed := GRE{Key: 0xdeadbeef}
	outer, err := keyed.Encapsulate(in, coa, ha)
	if err != nil {
		t.Fatal(err)
	}
	if added := outer.TotalLen() - in.TotalLen(); added != 28 {
		t.Errorf("keyed GRE overhead = %d, want 28", added)
	}
	if _, err := keyed.Decapsulate(outer); err != nil {
		t.Errorf("matching key rejected: %v", err)
	}
	if _, err := (GRE{Key: 1}).Decapsulate(outer); err == nil {
		t.Error("wrong key accepted")
	}
	// Keyless receiver accepts keyed packets (key check skipped).
	if _, err := (GRE{}).Decapsulate(outer); err != nil {
		t.Errorf("keyless decap of keyed packet failed: %v", err)
	}
}

func TestDecapsulateWrongProtocol(t *testing.T) {
	in := innerPacket(make([]byte, 10))
	ipip, _ := IPIP{}.Encapsulate(in, coa, ha)
	if _, err := (GRE{}).Decapsulate(ipip); err == nil {
		t.Error("GRE decapsulated an IPIP packet")
	}
	if _, err := (MinEnc{}).Decapsulate(ipip); err == nil {
		t.Error("MinEnc decapsulated an IPIP packet")
	}
	gre, _ := GRE{}.Encapsulate(in, coa, ha)
	if _, err := (IPIP{}).Decapsulate(gre); err == nil {
		t.Error("IPIP decapsulated a GRE packet")
	}
}

func TestDecapsulateTruncated(t *testing.T) {
	in := innerPacket(make([]byte, 10))
	for _, codec := range All() {
		outer, _ := codec.Encapsulate(in, coa, ha)
		outer.Payload = outer.Payload[:3]
		if _, err := codec.Decapsulate(outer); err == nil {
			t.Errorf("%s: truncated accepted", codec.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ipip", "minenc", "gre"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestTraceIDPreserved(t *testing.T) {
	for _, codec := range All() {
		in := innerPacket([]byte("x"))
		in.TraceID = 777
		outer, err := codec.Encapsulate(in, coa, ha)
		if err != nil {
			t.Fatal(err)
		}
		if outer.TraceID != 777 {
			t.Errorf("%s: encap lost trace id", codec.Name())
		}
		got, _ := codec.Decapsulate(outer)
		if got.TraceID != 777 {
			t.Errorf("%s: decap lost trace id", codec.Name())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codecs := All()
	f := func(which uint8, srcU, dstU, oSrcU, oDstU uint32, proto uint8, n uint16) bool {
		codec := codecs[int(which)%len(codecs)]
		in := ipv4.Packet{
			Header: ipv4.Header{
				Protocol: proto, TTL: 64,
				Src: ipv4.AddrFromUint32(srcU), Dst: ipv4.AddrFromUint32(dstU),
			},
			Payload: make([]byte, int(n)%4096),
		}
		rng.Read(in.Payload)
		outer, err := codec.Encapsulate(in, ipv4.AddrFromUint32(oSrcU), ipv4.AddrFromUint32(oDstU))
		if err != nil {
			return false
		}
		got, err := codec.Decapsulate(outer)
		if err != nil {
			return false
		}
		return got.Src == in.Src && got.Dst == in.Dst && got.Protocol == in.Protocol &&
			bytes.Equal(got.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkCodecs is the DESIGN.md codec ablation: cycles per
// encapsulate+decapsulate round trip for each scheme.
func BenchmarkCodecs(b *testing.B) {
	in := innerPacket(make([]byte, 1400))
	for _, codec := range All() {
		b.Run(codec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(in.TotalLen()))
			for i := 0; i < b.N; i++ {
				outer, err := codec.Encapsulate(in, coa, ha)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := codec.Decapsulate(outer); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(codec.Overhead()), "overhead-bytes")
		})
	}
}
