// Package encap implements the three IP-within-IP encapsulation schemes
// discussed by the paper: plain IP-in-IP ([Per96c], later RFC 2003),
// Minimal Encapsulation ([Per95], later RFC 2004) and Generic Routing
// Encapsulation ([RFC1702]). Section 2 notes that the ~20-byte overhead of
// full encapsulation "can be minimized by use of Generic Routing
// Encapsulation or Minimal Encapsulation"; the per-scheme Overhead
// methods and BenchmarkCodecs quantify that trade-off.
package encap

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// Codec encapsulates and decapsulates IP packets for tunneling.
type Codec interface {
	// Name identifies the scheme ("ipip", "minenc", "gre").
	Name() string
	// Proto is the IPv4 protocol number carried in the outer header.
	Proto() uint8
	// Overhead is the number of bytes the scheme adds to a packet
	// (outer header + scheme header, if any).
	Overhead() int
	// Encapsulate wraps inner in an outer packet from src to dst.
	Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error)
	// Decapsulate extracts the inner packet from an outer packet
	// previously produced by this codec.
	Decapsulate(outer ipv4.Packet) (ipv4.Packet, error)
}

// ByName returns the codec for a scheme name.
func ByName(name string) (Codec, error) {
	switch name {
	case "ipip":
		return IPIP{}, nil
	case "minenc":
		return MinEnc{}, nil
	case "gre":
		return GRE{}, nil
	default:
		return nil, fmt.Errorf("encap: unknown scheme %q", name)
	}
}

// All returns every codec, for sweeps and ablations.
func All() []Codec { return []Codec{IPIP{}, MinEnc{}, GRE{}} }

// IPIP is full IP-in-IP encapsulation: the entire original packet,
// header included, becomes the payload of a fresh IPv4 header.
// Overhead: 20 bytes (the paper's headline number in Section 3.3).
type IPIP struct{}

// Name implements Codec.
func (IPIP) Name() string { return "ipip" }

// Proto implements Codec.
func (IPIP) Proto() uint8 { return ipv4.ProtoIPIP }

// Overhead implements Codec.
func (IPIP) Overhead() int { return ipv4.HeaderLen }

// Encapsulate implements Codec.
func (IPIP) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	b, err := inner.Marshal()
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/ipip: %w", err)
	}
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoIPIP,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL, // outer TTL copied from inner on entry (RFC 2003 §3.1)
		},
		Payload: b,
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (IPIP) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoIPIP {
		return ipv4.Packet{}, fmt.Errorf("encap/ipip: outer protocol %d is not IPIP", outer.Protocol)
	}
	inner, err := ipv4.Unmarshal(outer.Payload)
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/ipip: bad inner packet: %w", err)
	}
	inner.TraceID = outer.TraceID
	return inner, nil
}

// MinEnc is Minimal Encapsulation ([Per95]): instead of a full inner IP
// header, a compressed 8- or 12-byte forwarding header carries only the
// fields the outer header cannot (original destination, original protocol,
// and — if it differs from the outer source — the original source).
// Overhead: 8 bytes when the original source is preserved in the outer
// header, 12 bytes otherwise. Minimal encapsulation cannot carry
// already-fragmented packets.
type MinEnc struct{}

// Name implements Codec.
func (MinEnc) Name() string { return "minenc" }

// Proto implements Codec.
func (MinEnc) Proto() uint8 { return ipv4.ProtoMinEnc }

// Overhead implements Codec.
func (MinEnc) Overhead() int { return 12 } // worst case: source present

const minEncSrcPresent = 0x80

// Encapsulate implements Codec.
func (MinEnc) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	if inner.MoreFrags || inner.FragOffset != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: cannot encapsulate fragments")
	}
	if len(inner.Options) > 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: cannot carry IP options")
	}
	srcPresent := inner.Src != src
	hlen := 8
	if srcPresent {
		hlen = 12
	}
	b := make([]byte, hlen+len(inner.Payload))
	b[0] = inner.Protocol
	if srcPresent {
		b[1] = minEncSrcPresent
	}
	copy(b[4:8], inner.Dst[:])
	if srcPresent {
		copy(b[8:12], inner.Src[:])
	}
	copy(b[hlen:], inner.Payload)
	binary.BigEndian.PutUint16(b[2:], ipv4.Checksum(b[:hlen]))
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoMinEnc,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL,
			TOS:      inner.TOS,
			ID:       inner.ID,
		},
		Payload: b,
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (MinEnc) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoMinEnc {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: outer protocol %d is not minimal encapsulation", outer.Protocol)
	}
	b := outer.Payload
	if len(b) < 8 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: truncated header (%d bytes)", len(b))
	}
	srcPresent := b[1]&minEncSrcPresent != 0
	hlen := 8
	if srcPresent {
		hlen = 12
	}
	if len(b) < hlen {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: truncated header (%d bytes)", len(b))
	}
	if ipv4.Checksum(b[:hlen]) != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: header checksum mismatch")
	}
	inner := ipv4.Packet{
		Header: ipv4.Header{
			Protocol: b[0],
			TTL:      outer.TTL,
			TOS:      outer.TOS,
			ID:       outer.ID,
			Src:      outer.Src,
		},
		Payload: b[hlen:],
		TraceID: outer.TraceID,
	}
	copy(inner.Dst[:], b[4:8])
	if srcPresent {
		copy(inner.Src[:], b[8:12])
	}
	return inner, nil
}

// GRE is Generic Routing Encapsulation ([RFC1702]) with an optional key.
// The base GRE header is 4 bytes; with the key present it is 8, for a
// total overhead of 24 or 28 bytes over the inner packet.
type GRE struct {
	// Key, when non-zero, is carried in the GRE key field (tunnel
	// multiplexing; the simulation uses it to label bindings).
	Key uint32
}

// Name implements Codec.
func (GRE) Name() string { return "gre" }

// Proto implements Codec.
func (GRE) Proto() uint8 { return ipv4.ProtoGRE }

// Overhead implements Codec.
func (g GRE) Overhead() int {
	if g.Key != 0 {
		return ipv4.HeaderLen + 8
	}
	return ipv4.HeaderLen + 4
}

const greKeyPresent = 0x2000

// Encapsulate implements Codec.
func (g GRE) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	ib, err := inner.Marshal()
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: %w", err)
	}
	hlen := 4
	var flags uint16
	if g.Key != 0 {
		hlen = 8
		flags |= greKeyPresent
	}
	b := make([]byte, hlen+len(ib))
	binary.BigEndian.PutUint16(b[0:], flags)
	binary.BigEndian.PutUint16(b[2:], 0x0800) // protocol type: IPv4
	if g.Key != 0 {
		binary.BigEndian.PutUint32(b[4:], g.Key)
	}
	copy(b[hlen:], ib)
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoGRE,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL,
		},
		Payload: b,
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (g GRE) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoGRE {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: outer protocol %d is not GRE", outer.Protocol)
	}
	b := outer.Payload
	if len(b) < 4 {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: truncated header")
	}
	flags := binary.BigEndian.Uint16(b[0:])
	if ptype := binary.BigEndian.Uint16(b[2:]); ptype != 0x0800 {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: unsupported protocol type %#04x", ptype)
	}
	hlen := 4
	if flags&greKeyPresent != 0 {
		hlen = 8
		if len(b) < hlen {
			return ipv4.Packet{}, fmt.Errorf("encap/gre: truncated key")
		}
		if g.Key != 0 && binary.BigEndian.Uint32(b[4:]) != g.Key {
			return ipv4.Packet{}, fmt.Errorf("encap/gre: key mismatch")
		}
	}
	inner, err := ipv4.Unmarshal(b[hlen:])
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: bad inner packet: %w", err)
	}
	inner.TraceID = outer.TraceID
	return inner, nil
}
