// Package encap implements the three IP-within-IP encapsulation schemes
// discussed by the paper: plain IP-in-IP ([Per96c], later RFC 2003),
// Minimal Encapsulation ([Per95], later RFC 2004) and Generic Routing
// Encapsulation ([RFC1702]). Section 2 notes that the ~20-byte overhead of
// full encapsulation "can be minimized by use of Generic Routing
// Encapsulation or Minimal Encapsulation"; the per-scheme Overhead
// methods and BenchmarkCodecs quantify that trade-off.
package encap

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// Codec encapsulates and decapsulates IP packets for tunneling.
type Codec interface {
	// Name identifies the scheme ("ipip", "minenc", "gre").
	Name() string
	// Proto is the IPv4 protocol number carried in the outer header.
	Proto() uint8
	// Overhead is the number of bytes the scheme adds to a packet
	// (outer header + scheme header, if any).
	Overhead() int
	// Encapsulate wraps inner in an outer packet from src to dst. It
	// allocates a fresh tunnel payload per call; hot paths use
	// AppendEncap with a pooled buffer instead.
	Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error)
	// AppendEncap is Encapsulate writing the tunnel payload into buf
	// (appending, growing it only if needed): the returned outer
	// packet's Payload references the appended bytes. Output bytes are
	// identical to Encapsulate's. The caller owns buf and must keep it
	// alive — and unrecycled — for as long as the outer packet is in
	// use.
	AppendEncap(inner ipv4.Packet, src, dst ipv4.Addr, buf []byte) (ipv4.Packet, error)
	// Decapsulate extracts the inner packet from an outer packet
	// previously produced by this codec. Decapsulation is in-place:
	// the inner packet's Payload aliases outer.Payload (no copy), so
	// the inner packet lives only as long as the outer buffer.
	Decapsulate(outer ipv4.Packet) (ipv4.Packet, error)
}

// HomeEncapper is the optional binding-tunnel extension of Codec: an
// encapsulator that knows the binding it is tunneling through states the
// mobile home address, letting the codec elide a home-addressed inner
// destination that the decapsulating mobile endpoint reconstructs from
// its own configuration. Codecs without the extension ignore the hint
// (see AppendEncapHome).
type HomeEncapper interface {
	AppendEncapHome(inner ipv4.Packet, src, dst, home ipv4.Addr, buf []byte) (ipv4.Packet, error)
}

// AppendEncapHome encapsulates through c with the binding's home address
// as a compression hint when c supports it, and falls back to plain
// AppendEncap when it does not. Tunnel entry points that know their
// binding (home agents, smart correspondents) call this instead of
// AppendEncap so route-opt compression engages without a codec switch
// in the caller.
func AppendEncapHome(c Codec, inner ipv4.Packet, src, dst, home ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	if he, ok := c.(HomeEncapper); ok {
		return he.AppendEncapHome(inner, src, dst, home, buf)
	}
	return c.AppendEncap(inner, src, dst, buf)
}

// ByName returns the codec for a scheme name.
func ByName(name string) (Codec, error) {
	switch name {
	case "ipip":
		return IPIP{}, nil
	case "minenc":
		return MinEnc{}, nil
	case "gre":
		return GRE{}, nil
	case "compact":
		return Compact{}, nil
	default:
		return nil, fmt.Errorf("encap: unknown scheme %q", name)
	}
}

// All returns every codec, for sweeps and ablations.
func All() []Codec { return []Codec{IPIP{}, MinEnc{}, GRE{}, Compact{}} }

// grow extends b by n bytes, reallocating at most once, and returns the
// extended slice. The new bytes are uninitialized (pooled buffers carry
// stale contents); callers must write every one of them.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		nb := make([]byte, len(b), len(b)+n)
		copy(nb, b)
		b = nb
	}
	return b[:len(b)+n]
}

// IPIP is full IP-in-IP encapsulation: the entire original packet,
// header included, becomes the payload of a fresh IPv4 header.
// Overhead: 20 bytes (the paper's headline number in Section 3.3).
type IPIP struct{}

// Name implements Codec.
func (IPIP) Name() string { return "ipip" }

// Proto implements Codec.
func (IPIP) Proto() uint8 { return ipv4.ProtoIPIP }

// Overhead implements Codec.
func (IPIP) Overhead() int { return ipv4.HeaderLen }

// Encapsulate implements Codec.
func (c IPIP) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	return c.AppendEncap(inner, src, dst, nil)
}

// AppendEncap implements Codec.
func (IPIP) AppendEncap(inner ipv4.Packet, src, dst ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	start := len(buf)
	b, err := inner.AppendMarshal(buf)
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/ipip: %w", err)
	}
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoIPIP,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL, // outer TTL copied from inner on entry (RFC 2003 §3.1)
		},
		Payload: b[start:],
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (IPIP) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoIPIP {
		return ipv4.Packet{}, fmt.Errorf("encap/ipip: outer protocol %d is not IPIP", outer.Protocol)
	}
	inner, err := ipv4.Unmarshal(outer.Payload)
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/ipip: bad inner packet: %w", err)
	}
	inner.TraceID = outer.TraceID
	return inner, nil
}

// MinEnc is Minimal Encapsulation ([Per95]): instead of a full inner IP
// header, a compressed 8- or 12-byte forwarding header carries only the
// fields the outer header cannot (original destination, original protocol,
// and — if it differs from the outer source — the original source).
// Overhead: 8 bytes when the original source is preserved in the outer
// header, 12 bytes otherwise. Minimal encapsulation cannot carry
// already-fragmented packets.
type MinEnc struct{}

// Name implements Codec.
func (MinEnc) Name() string { return "minenc" }

// Proto implements Codec.
func (MinEnc) Proto() uint8 { return ipv4.ProtoMinEnc }

// Overhead implements Codec.
func (MinEnc) Overhead() int { return 12 } // worst case: source present

const minEncSrcPresent = 0x80

// Encapsulate implements Codec.
func (c MinEnc) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	return c.AppendEncap(inner, src, dst, nil)
}

// AppendEncap implements Codec.
func (MinEnc) AppendEncap(inner ipv4.Packet, src, dst ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	if inner.MoreFrags || inner.FragOffset != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: cannot encapsulate fragments")
	}
	if len(inner.Options) > 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: cannot carry IP options")
	}
	srcPresent := inner.Src != src
	hlen := 8
	if srcPresent {
		hlen = 12
	}
	start := len(buf)
	b := grow(buf, hlen+len(inner.Payload))[start:]
	b[0] = inner.Protocol
	b[1] = 0
	if srcPresent {
		b[1] = minEncSrcPresent
	}
	b[2], b[3] = 0, 0
	copy(b[4:8], inner.Dst[:])
	if srcPresent {
		copy(b[8:12], inner.Src[:])
	}
	copy(b[hlen:], inner.Payload)
	binary.BigEndian.PutUint16(b[2:], ipv4.Checksum(b[:hlen]))
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoMinEnc,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL,
			TOS:      inner.TOS,
			ID:       inner.ID,
		},
		Payload: b,
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (MinEnc) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoMinEnc {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: outer protocol %d is not minimal encapsulation", outer.Protocol)
	}
	b := outer.Payload
	if len(b) < 8 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: truncated header (%d bytes)", len(b))
	}
	srcPresent := b[1]&minEncSrcPresent != 0
	hlen := 8
	if srcPresent {
		hlen = 12
	}
	if len(b) < hlen {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: truncated header (%d bytes)", len(b))
	}
	if ipv4.Checksum(b[:hlen]) != 0 {
		return ipv4.Packet{}, fmt.Errorf("encap/minenc: header checksum mismatch")
	}
	inner := ipv4.Packet{
		Header: ipv4.Header{
			Protocol: b[0],
			TTL:      outer.TTL,
			TOS:      outer.TOS,
			ID:       outer.ID,
			Src:      outer.Src,
		},
		Payload: b[hlen:],
		TraceID: outer.TraceID,
	}
	copy(inner.Dst[:], b[4:8])
	if srcPresent {
		copy(inner.Src[:], b[8:12])
	}
	return inner, nil
}

// GRE is Generic Routing Encapsulation ([RFC1702]) with an optional key.
// The base GRE header is 4 bytes; with the key present it is 8, for a
// total overhead of 24 or 28 bytes over the inner packet.
type GRE struct {
	// Key, when non-zero, is carried in the GRE key field (tunnel
	// multiplexing; the simulation uses it to label bindings).
	Key uint32
}

// Name implements Codec.
func (GRE) Name() string { return "gre" }

// Proto implements Codec.
func (GRE) Proto() uint8 { return ipv4.ProtoGRE }

// Overhead implements Codec.
func (g GRE) Overhead() int {
	if g.Key != 0 {
		return ipv4.HeaderLen + 8
	}
	return ipv4.HeaderLen + 4
}

const greKeyPresent = 0x2000

// Encapsulate implements Codec.
func (g GRE) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	return g.AppendEncap(inner, src, dst, nil)
}

// AppendEncap implements Codec. Unlike the old Encapsulate it writes the
// GRE header and the marshalled inner packet into one buffer directly (the
// old path marshalled into a scratch slice and copied it into a second
// allocation).
func (g GRE) AppendEncap(inner ipv4.Packet, src, dst ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	hlen := 4
	var flags uint16
	if g.Key != 0 {
		hlen = 8
		flags |= greKeyPresent
	}
	start := len(buf)
	withHdr := grow(buf, hlen)
	b, err := inner.AppendMarshal(withHdr)
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: %w", err)
	}
	b = b[start:]
	binary.BigEndian.PutUint16(b[0:], flags)
	binary.BigEndian.PutUint16(b[2:], 0x0800) // protocol type: IPv4
	if g.Key != 0 {
		binary.BigEndian.PutUint32(b[4:], g.Key)
	}
	return ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoGRE,
			Src:      src,
			Dst:      dst,
			TTL:      inner.TTL,
		},
		Payload: b,
		TraceID: inner.TraceID,
	}, nil
}

// Decapsulate implements Codec.
func (g GRE) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	if outer.Protocol != ipv4.ProtoGRE {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: outer protocol %d is not GRE", outer.Protocol)
	}
	b := outer.Payload
	if len(b) < 4 {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: truncated header")
	}
	flags := binary.BigEndian.Uint16(b[0:])
	if ptype := binary.BigEndian.Uint16(b[2:]); ptype != 0x0800 {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: unsupported protocol type %#04x", ptype)
	}
	hlen := 4
	if flags&greKeyPresent != 0 {
		hlen = 8
		if len(b) < hlen {
			return ipv4.Packet{}, fmt.Errorf("encap/gre: truncated key")
		}
		if g.Key != 0 && binary.BigEndian.Uint32(b[4:]) != g.Key {
			return ipv4.Packet{}, fmt.Errorf("encap/gre: key mismatch")
		}
	}
	inner, err := ipv4.Unmarshal(b[hlen:])
	if err != nil {
		return ipv4.Packet{}, fmt.Errorf("encap/gre: bad inner packet: %w", err)
	}
	inner.TraceID = outer.TraceID
	return inner, nil
}
