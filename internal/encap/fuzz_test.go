package encap

import (
	"bytes"
	"testing"

	"mob4x4/internal/ipv4"
)

// fuzzSrc/fuzzDst frame the tunnel endpoints used by every fuzz target.
var (
	fuzzSrc = ipv4.AddrFrom(36, 22, 0, 5)
	fuzzDst = ipv4.AddrFrom(128, 9, 1, 4)
)

// seedInner is a well-formed packet to derive valid tunnel payloads from.
func seedInner() ipv4.Packet {
	return ipv4.Packet{
		Header: ipv4.Header{
			TTL:      ipv4.DefaultTTL,
			Protocol: ipv4.ProtoUDP,
			Src:      ipv4.AddrFrom(36, 1, 1, 3),
			Dst:      ipv4.AddrFrom(17, 5, 0, 2),
		},
		Payload: []byte("seed"),
	}
}

// fuzzDecapsulate drives one codec's Decapsulate with arbitrary tunnel
// payloads. Decapsulation is the paper's packet-input edge: a home agent
// or smart correspondent feeds whatever arrives on the wire into it, so
// malformed bytes must produce an error, never a panic.
func fuzzDecapsulate(f *testing.F, c Codec) {
	if outer, err := c.Encapsulate(seedInner(), fuzzSrc, fuzzDst); err == nil {
		f.Add(outer.Payload) // a genuine well-formed tunnel payload
	}
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Add(make([]byte, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		outer := ipv4.Packet{
			Header: ipv4.Header{
				Protocol: c.Proto(),
				TTL:      ipv4.DefaultTTL,
				Src:      fuzzSrc,
				Dst:      fuzzDst,
			},
			Payload: data,
		}
		inner, err := c.Decapsulate(outer)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if got := inner.TotalLen(); got > ipv4.MaxTotalLen {
			t.Fatalf("accepted inner packet exceeds IPv4 limits: %d bytes", got)
		}
	})
}

func FuzzDecapsulateIPIP(f *testing.F)   { fuzzDecapsulate(f, IPIP{}) }
func FuzzDecapsulateMinEnc(f *testing.F) { fuzzDecapsulate(f, MinEnc{}) }
func FuzzDecapsulateGRE(f *testing.F)    { fuzzDecapsulate(f, GRE{}) }

// FuzzDecapsulateCompact covers the route-opt compression option in both
// endpoint shapes: agent side (no home; dst-is-home headers must be
// rejected, not guessed) and mobile side (home configured, restoration
// engaged).
func FuzzDecapsulateCompact(f *testing.F)     { fuzzDecapsulate(f, Compact{}) }
func FuzzDecapsulateCompactHome(f *testing.F) { fuzzDecapsulate(f, Compact{Home: ipv4.AddrFrom(36, 1, 1, 3)}) }

// FuzzDecapsulateGREKeyed exercises the key-checking path separately:
// with a key configured, mismatched and absent keys must be rejected
// without panicking.
func FuzzDecapsulateGREKeyed(f *testing.F) {
	fuzzDecapsulate(f, GRE{Key: 0xfeedface})
}

// FuzzEncapRoundTrip builds an arbitrary (but marshalable) inner packet,
// runs it through every codec, and checks that whatever Encapsulate
// accepts comes back byte-identical from Decapsulate — the property the
// paper's overhead comparison (Section 3.3) silently assumes.
func FuzzEncapRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(ipv4.ProtoUDP), uint8(64), uint16(7), []byte("hello"))
	f.Add(uint8(1), uint8(ipv4.ProtoTCP), uint8(1), uint16(0), []byte{})
	f.Add(uint8(2), uint8(ipv4.ProtoICMP), uint8(255), uint16(65535), bytes.Repeat([]byte{0xa5}, 100))
	f.Add(uint8(3), uint8(0), uint8(0), uint16(42), []byte("x"))

	f.Fuzz(func(t *testing.T, which, proto, ttl uint8, id uint16, payload []byte) {
		codecs := All()
		// A keyed GRE and a home-configured Compact (its home matching the
		// fixed inner destination, so the dst-is-home path round-trips).
		codecs = append(codecs, GRE{Key: 0xfeedface}, Compact{Home: ipv4.AddrFrom(17, 5, 0, 2)})
		c := codecs[int(which)%len(codecs)]
		inner := ipv4.Packet{
			Header: ipv4.Header{
				ID:       id,
				TTL:      ttl,
				Protocol: proto,
				Src:      ipv4.AddrFrom(36, 1, 1, 3),
				Dst:      ipv4.AddrFrom(17, 5, 0, 2),
			},
			Payload: payload,
		}
		outer, err := c.Encapsulate(inner, fuzzSrc, fuzzDst)
		if err != nil {
			return // e.g. payload too large for an IPv4 total length
		}
		if outer.Protocol != c.Proto() {
			t.Fatalf("%s: outer protocol %d, want %d", c.Name(), outer.Protocol, c.Proto())
		}
		// AppendEncap must build the same outer packet even into dirty
		// memory (it may not rely on make()'s zeroing).
		dirty := bytes.Repeat([]byte{0xff}, len(outer.Payload))
		outerA, err := c.AppendEncap(inner, fuzzSrc, fuzzDst, dirty[:0])
		if err != nil {
			t.Fatalf("%s: AppendEncap failed where Encapsulate succeeded: %v", c.Name(), err)
		}
		wireA, errA := outerA.Marshal()
		wire, errW := outer.Marshal()
		if errA != nil || errW != nil {
			t.Fatalf("%s: marshal of outer packets failed: %v / %v", c.Name(), errA, errW)
		}
		if !bytes.Equal(wireA, wire) {
			t.Fatalf("%s: AppendEncap diverges from Encapsulate:\n append %x\nencap  %x", c.Name(), wireA, wire)
		}
		got, err := c.Decapsulate(outer)
		if err != nil {
			t.Fatalf("%s: decapsulate of own encapsulation failed: %v", c.Name(), err)
		}
		if got.Src != inner.Src || got.Dst != inner.Dst || got.Protocol != inner.Protocol {
			t.Fatalf("%s: addressing changed across round trip: %s -> %s", c.Name(), &inner, &got)
		}
		if !bytes.Equal(got.Payload, inner.Payload) {
			t.Fatalf("%s: payload changed across round trip (%d -> %d bytes)",
				c.Name(), len(inner.Payload), len(got.Payload))
		}
		if want := inner.TotalLen() + c.Overhead(); outer.TotalLen() > want {
			t.Fatalf("%s: overhead exceeds advertised %d bytes: inner %d, outer %d",
				c.Name(), c.Overhead(), inner.TotalLen(), outer.TotalLen())
		}
	})
}
