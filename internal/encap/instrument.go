package encap

import (
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
)

// Instrumented wraps a Codec so every successful encapsulation and
// decapsulation is counted: once in the registry's global Encaps/Decaps
// totals, and once in a per-role named counter ("<role>/encaps",
// "<role>/decaps" — roles are "ha", "mn", "ch"). The named counters are
// resolved once at construction, so the per-packet cost is two plain
// increments; failures are not counted (the caller's error path owns
// those).
type Instrumented struct {
	inner  Codec
	reg    *metrics.Registry
	encaps *metrics.Counter
	decaps *metrics.Counter
}

// Instrument wraps c for the given registry and role. A nil registry
// returns c unwrapped (tests that build codecs without a sim).
func Instrument(c Codec, reg *metrics.Registry, role string) Codec {
	if reg == nil {
		return c
	}
	return &Instrumented{
		inner:  c,
		reg:    reg,
		encaps: reg.Counter(role + "/encaps"),
		decaps: reg.Counter(role + "/decaps"),
	}
}

// Unwrap returns the underlying codec.
func (ic *Instrumented) Unwrap() Codec { return ic.inner }

// Name returns the wrapped codec's scheme name.
func (ic *Instrumented) Name() string { return ic.inner.Name() }

// Proto returns the wrapped codec's outer protocol number.
func (ic *Instrumented) Proto() uint8 { return ic.inner.Proto() }

// Overhead returns the wrapped codec's per-packet byte overhead.
func (ic *Instrumented) Overhead() int { return ic.inner.Overhead() }

// Encapsulate counts and delegates.
func (ic *Instrumented) Encapsulate(inner ipv4.Packet, src, dst ipv4.Addr) (ipv4.Packet, error) {
	//mob4x4vet:allow hotpathalloc delegation: the wrapped codec's own Encapsulate allocates, not the wrapper
	out, err := ic.inner.Encapsulate(inner, src, dst)
	if err == nil {
		ic.reg.Encaps.Inc()
		ic.encaps.Inc()
	}
	return out, err
}

// AppendEncap counts and delegates.
func (ic *Instrumented) AppendEncap(inner ipv4.Packet, src, dst ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	out, err := ic.inner.AppendEncap(inner, src, dst, buf)
	if err == nil {
		ic.reg.Encaps.Inc()
		ic.encaps.Inc()
	}
	return out, err
}

// AppendEncapHome counts and delegates, preserving the wrapped codec's
// HomeEncapper capability (or its absence) through the wrapper.
func (ic *Instrumented) AppendEncapHome(inner ipv4.Packet, src, dst, home ipv4.Addr, buf []byte) (ipv4.Packet, error) {
	out, err := AppendEncapHome(ic.inner, inner, src, dst, home, buf)
	if err == nil {
		ic.reg.Encaps.Inc()
		ic.encaps.Inc()
	}
	return out, err
}

// Decapsulate counts and delegates.
func (ic *Instrumented) Decapsulate(outer ipv4.Packet) (ipv4.Packet, error) {
	in, err := ic.inner.Decapsulate(outer)
	if err == nil {
		ic.reg.Decaps.Inc()
		ic.decaps.Inc()
	}
	return in, err
}
