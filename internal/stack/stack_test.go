package stack

import (
	"bytes"
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// lanPair builds two hosts on one segment: a at .1, b at .2.
func lanPair(t testing.TB, opts netsim.SegmentOpts) (*netsim.Sim, *Host, *Host) {
	t.Helper()
	sim := netsim.NewSim(1)
	seg := sim.NewSegment("lan", opts)
	prefix := ipv4.MustParsePrefix("10.0.0.0/24")
	a := NewHost(sim, "a")
	a.AddIface("eth0", seg, prefix.Host(1), prefix)
	b := NewHost(sim, "b")
	b.AddIface("eth0", seg, prefix.Host(2), prefix)
	return sim, a, b
}

// capture installs a protocol handler that records delivered packets.
func capture(h *Host, proto uint8) *[]ipv4.Packet {
	var got []ipv4.Packet
	h.Handle(proto, func(_ *Iface, pkt ipv4.Packet) {
		got = append(got, pkt)
	})
	return &got
}

func TestOnLinkDeliveryWithARP(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{Latency: 1e6})
	got := capture(b, 99)

	err := a.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: 99, Dst: b.FirstAddr()},
		Payload: []byte("direct"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Sched.Run()

	if len(*got) != 1 {
		t.Fatalf("delivered %d packets", len(*got))
	}
	pkt := (*got)[0]
	if pkt.Src != a.FirstAddr() {
		t.Errorf("source not auto-filled: %s", pkt.Src)
	}
	if !bytes.Equal(pkt.Payload, []byte("direct")) {
		t.Error("payload mismatch")
	}
	// ARP resolved and cached: a second send must not broadcast again.
	arpBefore := a.Ifaces()[0].NIC().TxFrames
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}})
	sim.Sched.Run()
	if tx := a.Ifaces()[0].NIC().TxFrames - arpBefore; tx != 1 {
		t.Errorf("second send transmitted %d frames, want 1 (cached ARP)", tx)
	}
	if len(*got) != 2 {
		t.Errorf("second packet lost")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	sim, a, _ := lanPair(t, netsim.SegmentOpts{})
	got := capture(a, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: a.FirstAddr()}})
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ipv4.MustParseAddr("127.0.0.1")}})
	sim.Sched.Run()
	if len(*got) != 2 {
		t.Errorf("loopback delivered %d, want 2", len(*got))
	}
}

func TestARPFailureDropsQueuedPackets(t *testing.T) {
	sim, a, _ := lanPair(t, netsim.SegmentOpts{})
	// Target address exists in the prefix but no host owns it.
	ghost := ipv4.MustParseAddr("10.0.0.99")
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ghost}})
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ghost}})
	sim.Sched.Run()
	if a.Stats.DropNoARP != 2 {
		t.Errorf("DropNoARP = %d, want 2", a.Stats.DropNoARP)
	}
	// Exactly ARPRetries requests were broadcast.
	if tx := a.Ifaces()[0].NIC().TxFrames; tx != uint64(a.ARPRetries) {
		t.Errorf("sent %d ARP requests, want %d", tx, a.ARPRetries)
	}
}

func TestNoRouteDrop(t *testing.T) {
	sim, a, _ := lanPair(t, netsim.SegmentOpts{})
	err := a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ipv4.MustParseAddr("192.168.1.1")}})
	if err == nil {
		t.Error("expected no-route error")
	}
	sim.Sched.Run()
	if a.Stats.DropNoRoute != 1 {
		t.Errorf("DropNoRoute = %d", a.Stats.DropNoRoute)
	}
}

// threeNets builds a - r - b across two segments with r forwarding.
func threeNets(t testing.TB) (*netsim.Sim, *Host, *Host, *Host) {
	t.Helper()
	sim := netsim.NewSim(1)
	s1 := sim.NewSegment("s1", netsim.SegmentOpts{Latency: 1e6})
	s2 := sim.NewSegment("s2", netsim.SegmentOpts{Latency: 1e6})
	p1 := ipv4.MustParsePrefix("10.1.0.0/24")
	p2 := ipv4.MustParsePrefix("10.2.0.0/24")

	r := NewHost(sim, "r")
	r.Forwarding = true
	r.AddIface("if1", s1, p1.Host(1), p1)
	r.AddIface("if2", s2, p2.Host(1), p2)

	a := NewHost(sim, "a")
	ai := a.AddIface("eth0", s1, p1.Host(2), p1)
	a.Routes().AddDefault(ai, p1.Host(1))

	b := NewHost(sim, "b")
	bi := b.AddIface("eth0", s2, p2.Host(2), p2)
	b.Routes().AddDefault(bi, p2.Host(1))
	return sim, a, r, b
}

func TestForwarding(t *testing.T) {
	sim, a, r, b := threeNets(t)
	got := capture(b, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}, Payload: []byte("via r")})
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d", len(*got))
	}
	if r.Stats.IPForwarded != 1 {
		t.Errorf("router forwarded %d", r.Stats.IPForwarded)
	}
	if (*got)[0].TTL != ipv4.DefaultTTL-1 {
		t.Errorf("TTL = %d, want %d", (*got)[0].TTL, ipv4.DefaultTTL-1)
	}
}

func TestHostDoesNotForward(t *testing.T) {
	sim, a, r, b := threeNets(t)
	r.Forwarding = false
	got := capture(b, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}})
	sim.Sched.Run()
	if len(*got) != 0 {
		t.Error("non-forwarding host forwarded")
	}
}

func TestTTLExpiry(t *testing.T) {
	sim, a, r, b := threeNets(t)
	got := capture(b, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, TTL: 1, Dst: b.FirstAddr()}})
	sim.Sched.Run()
	if len(*got) != 0 {
		t.Error("TTL=1 packet crossed a router")
	}
	if r.Stats.DropTTL != 1 {
		t.Errorf("DropTTL = %d", r.Stats.DropTTL)
	}
}

func TestIngressSourceFilter(t *testing.T) {
	sim, a, r, b := threeNets(t)
	// r is the boundary of b's domain (10.2/24); a's side is outside.
	r.Filter = &FilterPolicy{
		DomainPrefixes:      []ipv4.Prefix{ipv4.MustParsePrefix("10.2.0.0/24")},
		IngressSourceFilter: true,
	}
	r.Ifaces()[0].Outside = true // the s1-facing interface

	got := capture(b, 99)
	// Spoof: a sends with a source INSIDE b's domain.
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{
		Protocol: 99, Src: ipv4.MustParseAddr("10.2.0.77"), Dst: b.FirstAddr()}})
	// Legitimate: a's own source.
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}})
	sim.Sched.Run()

	if len(*got) != 1 {
		t.Fatalf("delivered %d, want only the legitimate packet", len(*got))
	}
	if (*got)[0].Src != a.FirstAddr() {
		t.Error("wrong packet survived")
	}
	if r.Filter.IngressDrops != 1 || r.Stats.DropFilter != 1 {
		t.Errorf("drops: policy=%d host=%d", r.Filter.IngressDrops, r.Stats.DropFilter)
	}
}

func TestEgressSourceFilter(t *testing.T) {
	sim, a, r, b := threeNets(t)
	// r is the boundary of a's domain (10.1/24): packets leaving toward
	// s2 must carry inside sources (no transit traffic).
	r.Filter = &FilterPolicy{
		DomainPrefixes:     []ipv4.Prefix{ipv4.MustParsePrefix("10.1.0.0/24")},
		EgressSourceFilter: true,
	}
	r.Ifaces()[1].Outside = true // the s2-facing interface

	got := capture(b, 99)
	// Foreign source (e.g. a mobile host's home address) leaving the domain.
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{
		Protocol: 99, Src: ipv4.MustParseAddr("36.1.1.3"), Dst: b.FirstAddr()}})
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}})
	sim.Sched.Run()

	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if r.Filter.EgressDrops != 1 {
		t.Errorf("EgressDrops = %d", r.Filter.EgressDrops)
	}
}

func TestFilterExemptions(t *testing.T) {
	sim, a, r, b := threeNets(t)
	exempt := ipv4.MustParseAddr("36.1.1.3")
	r.Filter = &FilterPolicy{
		DomainPrefixes:     []ipv4.Prefix{ipv4.MustParsePrefix("10.1.0.0/24")},
		EgressSourceFilter: true,
		Exemptions:         []ipv4.Addr{exempt},
	}
	r.Ifaces()[1].Outside = true
	got := capture(b, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Src: exempt, Dst: b.FirstAddr()}})
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Error("exempt source filtered")
	}
}

func TestClaimedAddressDelivery(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	claimed := ipv4.MustParseAddr("36.1.1.3") // off-prefix address
	var viaOverride []ipv4.Packet
	b.Claim(claimed, func(_ *Iface, pkt ipv4.Packet) {
		viaOverride = append(viaOverride, pkt)
	})

	// Link-direct send to the claimed address (In-DH style): resolve the
	// on-link address, carry the claimed destination.
	_ = a.SendIPLinkDirect(a.Ifaces()[0], b.FirstAddr(), ipv4.Packet{
		Header: ipv4.Header{Protocol: 99, Dst: claimed},
	})
	sim.Sched.Run()
	if len(viaOverride) != 1 {
		t.Fatalf("claim override got %d packets", len(viaOverride))
	}
	if viaOverride[0].Dst != claimed {
		t.Error("destination rewritten")
	}

	// Unclaim: the packet is now silently dropped (not ours, not forwarding).
	b.Unclaim(claimed)
	_ = a.SendIPLinkDirect(a.Ifaces()[0], b.FirstAddr(), ipv4.Packet{
		Header: ipv4.Header{Protocol: 99, Dst: claimed},
	})
	sim.Sched.Run()
	if len(viaOverride) != 1 {
		t.Error("unclaimed address still delivered")
	}
}

func TestClaimNilOverrideUsesNormalDemux(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	claimed := ipv4.MustParseAddr("36.1.1.3")
	b.Claim(claimed, nil)
	got := capture(b, 99)
	_ = a.SendIPLinkDirect(a.Ifaces()[0], b.FirstAddr(), ipv4.Packet{
		Header: ipv4.Header{Protocol: 99, Dst: claimed},
	})
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Errorf("claimed-nil delivery = %d", len(*got))
	}
}

func TestFragmentationEndToEnd(t *testing.T) {
	sim := netsim.NewSim(1)
	// A narrow segment between a and b.
	seg := sim.NewSegment("narrow", netsim.SegmentOpts{MTU: 576})
	prefix := ipv4.MustParsePrefix("10.0.0.0/24")
	a := NewHost(sim, "a")
	a.AddIface("eth0", seg, prefix.Host(1), prefix)
	b := NewHost(sim, "b")
	b.AddIface("eth0", seg, prefix.Host(2), prefix)

	got := capture(b, 99)
	payload := make([]byte, 2000)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}, Payload: payload})
	sim.Sched.Run()

	if len(*got) != 1 {
		t.Fatalf("reassembled %d packets", len(*got))
	}
	if !bytes.Equal((*got)[0].Payload, payload) {
		t.Error("payload corrupted across fragmentation")
	}
	if a.Stats.FragsCreated < 4 {
		t.Errorf("FragsCreated = %d", a.Stats.FragsCreated)
	}
	if b.Stats.Reassembled != 1 {
		t.Errorf("Reassembled = %d", b.Stats.Reassembled)
	}
}

func TestDFPacketTriggersFragNeededHook(t *testing.T) {
	sim, a, _ := lanPair(t, netsim.SegmentOpts{MTU: 576})
	var hookMTU int
	a.FragNeeded = func(ifc *Iface, pkt ipv4.Packet, mtu int) { hookMTU = mtu }
	err := a.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: 99, Dst: ipv4.MustParseAddr("10.0.0.2"), DontFrag: true},
		Payload: make([]byte, 1000),
	})
	if err == nil {
		t.Error("DF oversize send should error")
	}
	sim.Sched.Run()
	if hookMTU != 576 {
		t.Errorf("hook mtu = %d", hookMTU)
	}
	if a.Stats.DropFragSet != 1 {
		t.Errorf("DropFragSet = %d", a.Stats.DropFragSet)
	}
}

func TestBroadcastSend(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	got := capture(b, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ipv4.Broadcast}})
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Errorf("broadcast delivered %d", len(*got))
	}
}

func TestDirectedBroadcastReceived(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	got := capture(b, 99)
	// Directed broadcast of the connected prefix, link-broadcast framed.
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ipv4.MustParseAddr("10.0.0.255")}})
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Errorf("directed broadcast delivered %d", len(*got))
	}
}

func TestGratuitousARPUpdatesNeighbors(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	// Prime a's cache with b's address.
	got := capture(b, 99)
	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}})
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Fatal("setup send failed")
	}
	// A third host takes over b's address (as a proxying home agent
	// would) and announces it gratuitously.
	seg := a.Ifaces()[0].NIC().Segment()
	c := NewHost(sim, "c")
	ci := c.AddIface("eth0", seg, ipv4.MustParseAddr("10.0.0.3"), ipv4.MustParsePrefix("10.0.0.0/24"))
	ci.Proxy().Add(b.FirstAddr())
	cGot := capture(c, 99)
	ci.GratuitousARP(b.FirstAddr())
	sim.Sched.Run()

	_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: b.FirstAddr()}})
	sim.Sched.Run()
	// c claims nothing, so the packet addressed to b's IP arrives at c's
	// NIC but is not locally deliverable; what we verify is the ARP
	// takeover: b must NOT have received it.
	if len(*got) != 1 {
		t.Error("b still receives after gratuitous takeover")
	}
	_ = cGot
}

func TestSetAddrReplacesConnectedRoute(t *testing.T) {
	sim, a, _ := lanPair(t, netsim.SegmentOpts{})
	ifc := a.Ifaces()[0]
	newPrefix := ipv4.MustParsePrefix("172.16.0.0/24")
	ifc.SetAddr(ipv4.MustParseAddr("172.16.0.5"), newPrefix)
	if _, ok := a.Routes().Lookup(ipv4.MustParseAddr("10.0.0.2")); ok {
		t.Error("old connected route survives SetAddr")
	}
	if rt, ok := a.Routes().Lookup(ipv4.MustParseAddr("172.16.0.9")); !ok || rt.Iface != ifc {
		t.Error("new connected route missing")
	}
	_ = sim
}

func TestIfaceByNameAndAccessors(t *testing.T) {
	_, a, _ := lanPair(t, netsim.SegmentOpts{})
	if a.IfaceByName("eth0") == nil {
		t.Error("IfaceByName failed")
	}
	if a.IfaceByName("nope") != nil {
		t.Error("IfaceByName invented an interface")
	}
	ifc := a.Ifaces()[0]
	if ifc.Host() != a || ifc.Addr() != a.FirstAddr() || ifc.Prefix().Bits != 24 {
		t.Error("accessors broken")
	}
}

func TestNextIPIDMonotonic(t *testing.T) {
	_, a, _ := lanPair(t, netsim.SegmentOpts{})
	last := a.NextIPID()
	for i := 0; i < 100; i++ {
		id := a.NextIPID()
		if id == last {
			t.Fatal("IP ID repeated immediately")
		}
		last = id
	}
}

// BenchmarkForwardingRate measures the simulated router datapath:
// packets fully marshalled, checksummed, forwarded and delivered.
func BenchmarkForwardingRate(b *testing.B) {
	sim, a, _, dst := threeNets(b)
	sim.Trace.Enabled = false
	delivered := 0
	dst.Handle(99, func(_ *Iface, pkt ipv4.Packet) { delivered++ })
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: dst.FirstAddr()}, Payload: payload})
		if i%64 == 63 {
			sim.Sched.Run()
		}
	}
	sim.Sched.Run()
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// TestEndToEndDeliveryProperty: random payload sizes survive the full
// datapath — routing, ARP, fragmentation across a narrow middle link,
// reassembly — byte-intact.
func TestEndToEndDeliveryProperty(t *testing.T) {
	sim := netsim.NewSim(21)
	s1 := sim.NewSegment("s1", netsim.SegmentOpts{Latency: 1e6})
	s2 := sim.NewSegment("s2", netsim.SegmentOpts{Latency: 1e6, MTU: 576})
	p1 := ipv4.MustParsePrefix("10.1.0.0/24")
	p2 := ipv4.MustParsePrefix("10.2.0.0/24")
	r := NewHost(sim, "r")
	r.Forwarding = true
	r.AddIface("if1", s1, p1.Host(1), p1)
	r.AddIface("if2", s2, p2.Host(1), p2)
	a := NewHost(sim, "a")
	ai := a.AddIface("eth0", s1, p1.Host(2), p1)
	a.Routes().AddDefault(ai, p1.Host(1))
	b := NewHost(sim, "b")
	bi := b.AddIface("eth0", s2, p2.Host(2), p2)
	b.Routes().AddDefault(bi, p2.Host(1))

	received := map[string][]byte{}
	b.Handle(99, func(_ *Iface, pkt ipv4.Packet) {
		received[string(pkt.Payload[:8])] = append([]byte(nil), pkt.Payload...)
	})

	rng := sim.Sched.Rand()
	sent := map[string][]byte{}
	for i := 0; i < 60; i++ {
		size := 8 + rng.Intn(8000)
		payload := make([]byte, size)
		rng.Read(payload)
		key := string(payload[:8])
		sent[key] = payload
		if err := a.SendIP(ipv4.Packet{
			Header:  ipv4.Header{Protocol: 99, Dst: b.FirstAddr()},
			Payload: payload,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Sched.Run()

	if len(received) != len(sent) {
		t.Fatalf("received %d/%d packets", len(received), len(sent))
	}
	for key, want := range sent {
		got, ok := received[key]
		if !ok {
			t.Fatalf("packet %x lost", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("packet %x corrupted (len %d vs %d)", key, len(got), len(want))
		}
	}
}
