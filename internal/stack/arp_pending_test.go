package stack

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// TestARPPendingQueueBounded pins the ARP-miss queue bound: a fast sender
// aimed at an unresolvable nexthop may pin at most ARPQueueLimit copied
// payloads; the oldest are shed and counted in DroppedARPExpired, and the
// survivors still go out when the resolution finally succeeds.
func TestARPPendingQueueBounded(t *testing.T) {
	sim, a, _ := lanPair(t, netsim.SegmentOpts{})
	a.ARPQueueLimit = 4
	ghost := ipv4.MustParseAddr("10.0.0.99")

	const sent = 10
	for k := 0; k < sent; k++ {
		_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ghost}})
	}
	// All sends happened in one instant: the queue holds the newest 4,
	// the other 6 were shed on arrival.
	job := a.Ifaces()[0].pending[ghost]
	if job == nil {
		t.Fatal("no pending resolution for ghost address")
	}
	if got := len(job.pkts); got != 4 {
		t.Errorf("pending queue holds %d packets, want 4", got)
	}
	if a.Stats.DroppedARPExpired != sent-4 {
		t.Errorf("DroppedARPExpired = %d, want %d", a.Stats.DroppedARPExpired, sent-4)
	}

	// Let the resolution expire: the queued survivors are dropped too,
	// counted in both DropNoARP and DroppedARPExpired.
	sim.Sched.Run()
	if a.Stats.DropNoARP != 4 {
		t.Errorf("DropNoARP = %d, want 4", a.Stats.DropNoARP)
	}
	if a.Stats.DroppedARPExpired != sent {
		t.Errorf("DroppedARPExpired = %d, want %d", a.Stats.DroppedARPExpired, sent)
	}
}

// TestARPQueueUnboundedWhenDisabled keeps the 0 = unbounded contract.
func TestARPQueueUnboundedWhenDisabled(t *testing.T) {
	_, a, _ := lanPair(t, netsim.SegmentOpts{})
	a.ARPQueueLimit = 0
	ghost := ipv4.MustParseAddr("10.0.0.99")
	for k := 0; k < 100; k++ {
		_ = a.SendIP(ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: ghost}})
	}
	if got := len(a.Ifaces()[0].pending[ghost].pkts); got != 100 {
		t.Errorf("pending queue holds %d packets, want 100", got)
	}
	if a.Stats.DroppedARPExpired != 0 {
		t.Errorf("DroppedARPExpired = %d, want 0 before expiry", a.Stats.DroppedARPExpired)
	}
}
