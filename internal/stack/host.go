// Package stack implements the per-host IPv4 network stack used by every
// node in the simulated internetwork — end hosts, routers, home agents,
// foreign agents and mobile hosts are all a Host with different
// configuration.
//
// The stack deliberately mirrors the implementation strategy described in
// Section 7 of the paper: the IP route lookup is a single function with a
// pluggable override ("we override the IP route lookup routine and replace
// it with a routine that consults a mobility policy table before the usual
// route table"), and routes may point at a virtual interface whose output
// function encapsulates the packet and resubmits it to IP.
package stack

import (
	"mob4x4/internal/arp"
	"mob4x4/internal/assert"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

// ProtoHandler receives IP packets delivered locally for a protocol
// number. iface is the interface the packet arrived on (nil for
// locally-generated loopback deliveries).
type ProtoHandler func(iface *Iface, pkt ipv4.Packet)

// Stats counts per-host packet dispositions.
type Stats struct {
	IPSent      uint64
	IPReceived  uint64
	IPForwarded uint64
	IPDelivered uint64

	DropNoRoute   uint64
	DropTTL       uint64
	DropFilter    uint64
	DropNoARP     uint64
	DropMalformed uint64
	DropNoProto   uint64
	DropFragSet   uint64 // DF set but fragmentation needed
	FragsCreated  uint64
	Reassembled   uint64
	// DroppedARPExpired counts packets shed from the ARP-miss pending
	// queue: evicted when the per-nexthop queue overflows ARPQueueLimit,
	// or discarded when the resolution itself times out (those are also
	// counted in DropNoARP).
	DroppedARPExpired uint64
}

// Host is a simulated IP node.
type Host struct {
	sim *netsim.Sim
	// metrics caches sim.Metrics so hot-path increments are one pointer
	// chase, not two.
	metrics *metrics.Registry
	name    string

	ifaces []*Iface

	routes *RouteTable
	// RouteOverride, when non-nil, is consulted before the route table
	// for every locally-originated packet. Returning ok=false falls
	// through to the normal table. This is the paper's mobility policy
	// hook; package mobileip installs it.
	RouteOverride func(pkt *ipv4.Packet) (Route, bool)

	// Forwarding enables IP forwarding (routers).
	Forwarding bool

	// Filter, when non-nil, is the boundary filtering policy (Section
	// 3.1 of the paper): source-address checks at domain boundaries.
	Filter *FilterPolicy

	protoHandlers map[uint8]ProtoHandler

	// claimed is the set of additional local addresses: a mobile host
	// claims its home address wherever it is; a home agent claims the
	// addresses of mobile hosts it serves (paired with proxy ARP).
	claimed map[ipv4.Addr]ProtoOverride

	udpSocks  map[uint16]*UDPSocket
	ephemeral uint16
	// portProbe is SourceForDestinationPort's scratch transport header
	// (dst port at [2:4]); a field rather than a local so the probe
	// packet referencing it never forces a heap allocation.
	portProbe [4]byte

	reasm      *ipv4.Reassembler
	reasmTimer *vtime.Timer

	nextIPID uint16

	// FragNeeded, when non-nil, is called when a DF-marked packet
	// exceeds the output MTU (hook for ICMP "fragmentation needed"
	// generation on routers).
	FragNeeded func(ifc *Iface, pkt ipv4.Packet, mtu int)

	// TTLExceeded, when non-nil, is called when a forwarded packet's
	// TTL expires at this host (hook for ICMP "time exceeded"
	// generation — what traceroute listens for).
	TTLExceeded func(in *Iface, pkt ipv4.Packet)

	// MulticastTap, when non-nil, sees every locally-delivered multicast
	// packet first; returning true consumes it (a home agent's group
	// relay uses this).
	MulticastTap func(ifc *Iface, pkt ipv4.Packet) bool

	// DeliveryHook, when non-nil, observes every locally-delivered
	// packet after stats and trace accounting, before demultiplexing.
	// ifc is the arrival interface; nil marks loopback/resubmitted
	// deliveries (a decapsulated inner packet re-entering IP), which
	// lets the mobility code classify only genuine over-the-wire
	// arrivals into the 4x4 In-mode grid. The hook takes the packet by
	// value: a pointer would make the delivery path's packet escape to
	// the heap and break the zero-allocation forwarding pins.
	DeliveryHook func(ifc *Iface, pkt ipv4.Packet)

	// ARPTimeout and ARPRetries control address resolution patience.
	ARPTimeout vtime.Duration
	ARPRetries int
	// ARPCacheTTL bounds cache entry lifetime (0 = no expiry).
	ARPCacheTTL vtime.Duration
	// ARPQueueLimit bounds how many packets may wait per nexthop while
	// ARP resolves; the oldest is shed (DroppedARPExpired) when a new
	// packet arrives at a full queue. 0 means unbounded.
	ARPQueueLimit int

	Stats Stats
}

// ProtoOverride lets a claimed address redirect all packets (any protocol)
// to a handler instead of the normal protocol demux. A nil ProtoOverride
// means "deliver normally" (the usual case for a mobile host's own home
// address).
type ProtoOverride func(iface *Iface, pkt ipv4.Packet)

// ReassemblyTimeout is how long fragments wait for their siblings.
const ReassemblyTimeout = 30 * 1e9 // 30s in nanoseconds (vtime.Duration)

// NewHost creates a host with no interfaces. The handler/claim/socket maps
// are allocated lazily at their write sites: large grid scenarios build
// hundreds of hosts, most of which never register handlers or claims.
func NewHost(sim *netsim.Sim, name string) *Host {
	h := &Host{
		sim:         sim,
		metrics:     sim.Metrics,
		name:        name,
		routes:      NewRouteTable(),
		ephemeral:   49152,
		reasm:       ipv4.NewReassembler(),
		ARPTimeout:  vtime.Duration(1e9), // 1s
		ARPRetries:  3,
		ARPCacheTTL: vtime.Duration(300e9), // 5min, well above most runs
		// High enough that no legitimate burst (a fragmented burst can
		// queue hundreds of fragments during one ARP round-trip) ever
		// hits it; low enough that an unresolvable nexthop cannot pin
		// memory without bound.
		ARPQueueLimit: 2048,
	}
	return h
}

// Name returns the host name (used in traces).
func (h *Host) Name() string { return h.name }

// Sim returns the owning simulation.
func (h *Host) Sim() *netsim.Sim { return h.sim }

// Sched returns the simulation scheduler (timer convenience).
func (h *Host) Sched() *vtime.Scheduler { return h.sim.Sched }

// Routes returns the host's route table.
func (h *Host) Routes() *RouteTable { return h.routes }

// Iface is a configured network interface: a NIC plus IP configuration and
// per-interface ARP state.
type Iface struct {
	host   *Host
	nic    *netsim.NIC
	addr   ipv4.Addr
	prefix ipv4.Prefix

	// cache and proxy live inline: an Iface always has exactly one of
	// each, and separate heap objects per interface were a measurable
	// share of scenario construction.
	cache arp.Cache
	proxy arp.Proxy

	// Outside marks the interface as facing out of the administrative
	// domain; the filter policy distinguishes inside from outside.
	Outside bool

	pending map[ipv4.Addr]*resolveJob

	// groups is the set of multicast groups joined on this interface.
	groups map[ipv4.Addr]bool
}

// AddIface creates an interface named name with the given address and
// on-link prefix, attached to seg (may be nil: created detached). A
// connected route for the prefix is installed automatically when the
// prefix is non-zero.
func (h *Host) AddIface(name string, seg *netsim.Segment, addr ipv4.Addr, prefix ipv4.Prefix) *Iface {
	nic := h.sim.NewNIC(h.name + ":" + name)
	ifc := &Iface{
		host:   h,
		nic:    nic,
		addr:   addr,
		prefix: prefix,
		// cache, proxy, and pending all initialize lazily on first use.
	}
	nic.SetReceiver(ifc.receiveFrame)
	if seg != nil {
		nic.Attach(seg)
	}
	h.ifaces = append(h.ifaces, ifc)
	if prefix.Bits > 0 {
		h.routes.Add(Route{Prefix: prefix, Iface: ifc, Metric: 0})
	}
	return ifc
}

// Ifaces returns the host's interfaces in creation order.
func (h *Host) Ifaces() []*Iface { return h.ifaces }

// IfaceByName returns the interface whose NIC name suffix matches name.
func (h *Host) IfaceByName(name string) *Iface {
	for _, ifc := range h.ifaces {
		if ifc.nic.Name() == h.name+":"+name {
			return ifc
		}
	}
	return nil
}

// Host returns the owning host.
func (i *Iface) Host() *Host { return i.host }

// NIC returns the underlying simulated NIC.
func (i *Iface) NIC() *netsim.NIC { return i.nic }

// Addr returns the interface's IP address.
func (i *Iface) Addr() ipv4.Addr { return i.addr }

// Prefix returns the interface's on-link prefix.
func (i *Iface) Prefix() ipv4.Prefix { return i.prefix }

// Proxy returns the interface's proxy-ARP set (home agents use this).
func (i *Iface) Proxy() *arp.Proxy { return &i.proxy }

// ARPCache returns the interface's ARP cache.
func (i *Iface) ARPCache() *arp.Cache { return &i.cache }

// SetAddr reconfigures the interface address and on-link prefix,
// replacing the old connected route. This is the "obtained a new care-of
// address" primitive.
func (i *Iface) SetAddr(addr ipv4.Addr, prefix ipv4.Prefix) {
	if i.prefix.Bits > 0 {
		i.host.routes.RemoveConnected(i)
	}
	i.addr = addr
	i.prefix = prefix
	i.cache.Flush()
	if prefix.Bits > 0 {
		i.host.routes.Add(Route{Prefix: prefix, Iface: i, Metric: 0})
	}
}

// Attach moves the interface onto a segment (mobility primitive). The ARP
// cache is flushed: neighbours from the old segment are meaningless.
func (i *Iface) Attach(seg *netsim.Segment) {
	i.nic.Attach(seg)
	i.cache.Flush()
	var detail string
	if i.host.sim.Trace.Detailing() {
		detail = "iface " + i.nic.Name() + " attached to " + segName(seg)
	}
	i.host.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventMove, Time: i.host.sim.Now(), Where: i.host.name,
		Detail: detail,
	})
}

// Detach disconnects the interface.
func (i *Iface) Detach() {
	i.nic.Detach()
	i.cache.Flush()
	var detail string
	if i.host.sim.Trace.Detailing() {
		detail = "iface " + i.nic.Name() + " detached"
	}
	i.host.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventMove, Time: i.host.sim.Now(), Where: i.host.name,
		Detail: detail,
	})
}

func segName(seg *netsim.Segment) string {
	if seg == nil {
		return "(none)"
	}
	return seg.Name()
}

// Handle registers a protocol handler (ICMP, TCP, tunnel decapsulators...).
func (h *Host) Handle(proto uint8, fn ProtoHandler) {
	if h.protoHandlers == nil {
		h.protoHandlers = make(map[uint8]ProtoHandler)
	}
	h.protoHandlers[proto] = fn
}

// Claim adds addr to the host's set of local addresses. If override is
// non-nil, every packet to addr is diverted to it (home-agent capture);
// if nil, packets to addr are demultiplexed normally (mobile host's own
// home address).
func (h *Host) Claim(addr ipv4.Addr, override ProtoOverride) {
	if h.claimed == nil {
		h.claimed = make(map[ipv4.Addr]ProtoOverride)
	}
	h.claimed[addr] = override
}

// Unclaim removes a claimed address.
func (h *Host) Unclaim(addr ipv4.Addr) {
	delete(h.claimed, addr)
}

// Claimed reports whether addr is claimed (including interface addresses).
func (h *Host) Claimed(addr ipv4.Addr) bool {
	if _, ok := h.claimed[addr]; ok {
		return true
	}
	return h.addrLocal(addr)
}

func (h *Host) addrLocal(addr ipv4.Addr) bool {
	for _, ifc := range h.ifaces {
		if ifc.addr == addr {
			return true
		}
	}
	return false
}

// FirstAddr returns the address of the first configured interface, or the
// zero address.
func (h *Host) FirstAddr() ipv4.Addr {
	for _, ifc := range h.ifaces {
		if !ifc.addr.IsZero() {
			return ifc.addr
		}
	}
	return ipv4.Zero
}

// NextIPID returns a fresh IP identification value for fragmentation.
func (h *Host) NextIPID() uint16 {
	h.nextIPID++
	return h.nextIPID
}

// Quiesce cancels every timer the stack itself holds — the reassembly
// timer (in-progress fragment sets are discarded) and any in-flight ARP
// resolutions (their queued packets are shed and accounted as
// ARP-expired). A pending timer is an event owned by the host's current
// scheduler, so a host must be quiesced before it can migrate to another
// region shard. Timers owned by layers above the stack (registration,
// renewal, probing, transports) are those layers' to stop.
func (h *Host) Quiesce() {
	if h.reasmTimer != nil {
		h.reasmTimer.Stop()
	}
	h.reasm.Expire()
	for _, ifc := range h.ifaces {
		//mob4x4vet:allow mapiter only commutative drop counters escape; the jobs are discarded wholesale
		for _, job := range ifc.pending {
			job.timer.Stop()
			h.Stats.DroppedARPExpired += uint64(len(job.pkts))
			h.metrics.DropN(metrics.DropARPExpired, uint64(len(job.pkts)))
		}
		ifc.pending = nil
	}
}

// Rehome re-parents a quiesced host onto another region Sim: migration
// moves a mobile node between shards, and everything the host touches
// from then on — scheduler, tracer, metric registry, NIC bookkeeping —
// must belong to the destination region. Every interface must be detached
// and the host quiesced (no stack-held timers pending); violations are
// logic errors, not recoverable conditions.
func (h *Host) Rehome(sim *netsim.Sim) {
	if h.reasmTimer.Pending() {
		assert.Unreachable("stack: Rehome of %s with a pending reassembly timer (call Quiesce first)", h.name)
	}
	for _, ifc := range h.ifaces {
		if ifc.nic.Attached() {
			assert.Unreachable("stack: Rehome of %s while iface %s is attached", h.name, ifc.nic.Name())
		}
		if len(ifc.pending) > 0 {
			assert.Unreachable("stack: Rehome of %s with in-flight ARP resolutions (call Quiesce first)", h.name)
		}
		ifc.nic.Rehome(sim)
		ifc.cache.Flush()
	}
	// The reassembly timer handle is bound to the old scheduler; drop it
	// so the next fragment arms a fresh one on the new region's clock.
	h.reasmTimer = nil
	h.sim = sim
	h.metrics = sim.Metrics
}
