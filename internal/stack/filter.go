package stack

import (
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
)

// FilterPolicy models the boundary-router behavior described in Section
// 3.1 of the paper. A domain's boundary router knows which prefixes are
// inside the domain; its interfaces are tagged inside/outside (Iface.
// Outside). Two independent checks apply to packets crossing the boundary:
//
//   - IngressSourceFilter: a packet arriving on an OUTSIDE interface whose
//     source address claims to be INSIDE the domain is dropped. This is
//     the check in Figure 2 that discards a mobile host's Out-DH replies
//     ("a packet coming from outside the home network, with a source
//     address claiming that the packet originates from a machine inside").
//
//   - EgressSourceFilter: a packet leaving via an OUTSIDE interface whose
//     source address is NOT inside the domain is dropped. This is the
//     "transit traffic forbidden" / invalid-source policy that makes a
//     visited network discard Out-DH packets carrying a foreign (home)
//     source address.
type FilterPolicy struct {
	// DomainPrefixes enumerate the address space considered "inside".
	DomainPrefixes      []ipv4.Prefix
	IngressSourceFilter bool
	EgressSourceFilter  bool

	// Exemptions lists addresses never filtered (e.g. a firewall
	// configured to accept tunnels addressed to the home agent would be
	// modelled by the tunnel's outer addresses simply passing the source
	// checks, so this is rarely needed; it exists for experiments that
	// poke at policy granularity).
	Exemptions []ipv4.Addr

	// Drops counts discarded packets by direction.
	IngressDrops uint64
	EgressDrops  uint64
}

// Inside reports whether addr belongs to the domain.
func (f *FilterPolicy) Inside(addr ipv4.Addr) bool {
	for _, p := range f.DomainPrefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

func (f *FilterPolicy) exempt(addr ipv4.Addr) bool {
	for _, a := range f.Exemptions {
		if a == addr {
			return true
		}
	}
	return false
}

// checkIngress is called for packets received on iface before local
// delivery or forwarding. It reports whether the packet may proceed.
func (f *FilterPolicy) checkIngress(iface *Iface, pkt *ipv4.Packet) bool {
	if f == nil || !f.IngressSourceFilter || !iface.Outside {
		return true
	}
	if f.exempt(pkt.Src) {
		return true
	}
	if f.Inside(pkt.Src) {
		f.IngressDrops++
		return false
	}
	return true
}

// checkEgress is called for packets about to be transmitted via iface.
func (f *FilterPolicy) checkEgress(iface *Iface, pkt *ipv4.Packet) bool {
	if f == nil || !f.EgressSourceFilter || !iface.Outside {
		return true
	}
	if f.exempt(pkt.Src) {
		return true
	}
	if !f.Inside(pkt.Src) {
		f.EgressDrops++
		return false
	}
	return true
}

func (h *Host) traceFilterDrop(direction string, iface *Iface, pkt *ipv4.Packet) {
	h.Stats.DropFilter++
	h.metrics.Drop(metrics.DropFilter)
	var detail string
	if h.sim.Trace.Detailing() {
		detail = filterDetail(direction, iface.nic.Name(), pkt.Src, pkt.Dst)
	}
	h.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventDropFilter, Time: h.sim.Now(), Where: h.name,
		PktID:  pkt.TraceID,
		Detail: detail,
	})
}
