package stack

import (
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
)

// SendIP routes and transmits a locally-generated packet. Zero-valued
// fields are completed: TTL (DefaultTTL), ID (fresh), TraceID (fresh), and
// Src (address of the output interface — unless the caller pinned it,
// which is exactly how the mobility code chooses between the home address
// and the care-of address).
func (h *Host) SendIP(pkt ipv4.Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = ipv4.DefaultTTL
	}
	if pkt.ID == 0 {
		pkt.ID = h.NextIPID()
	}
	if pkt.TraceID == 0 {
		pkt.TraceID = h.sim.Trace.NextPacketID()
	}
	h.Stats.IPSent++
	h.metrics.IPSent.Inc()
	var detail string
	if h.sim.Trace.Detailing() {
		detail = pktDetail(pkt.Src, pkt.Dst, pkt.Protocol, pkt.TotalLen())
	}
	h.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventSend, Time: h.sim.Now(), Where: h.name, PktID: pkt.TraceID,
		Detail: detail,
	})
	return h.output(pkt, true)
}

// Resubmit re-enters a packet into the IP output path without consulting
// the route override again. Virtual (tunnel) interfaces call this with the
// encapsulated packet, mirroring the paper's "encapsulates the packet and
// resubmits it to IP".
func (h *Host) Resubmit(pkt ipv4.Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = ipv4.DefaultTTL
	}
	if pkt.ID == 0 {
		pkt.ID = h.NextIPID()
	}
	return h.output(pkt, false)
}

// output routes pkt and hands it to an interface. useOverride selects
// whether the mobility policy hook is consulted (true only for the first
// pass over locally-generated packets).
func (h *Host) output(pkt ipv4.Packet, useOverride bool) error {
	// Local destination: deliver without touching the network (deferred
	// through the scheduler; see postLocal).
	if h.Claimed(pkt.Dst) || pkt.Dst.IsLoopback() {
		h.postLocal(pkt)
		return nil
	}

	// Limited broadcast: transmit on the first attached interface (DHCP
	// and other link-scoped chatter).
	if pkt.Dst.IsBroadcast() {
		for _, ifc := range h.ifaces {
			if ifc.nic.Attached() {
				return h.transmit(ifc, pkt.Dst, pkt)
			}
		}
		return fmt.Errorf("%s: no attached interface for broadcast", h.name)
	}

	var rt Route
	var ok bool
	if useOverride && h.RouteOverride != nil {
		// The override takes a pointer (it may rewrite Src even when it
		// declines the packet, e.g. Out-DH pinning the home address);
		// calling it with a copy keeps pkt itself off the heap on hosts
		// that have no override installed.
		po := pkt
		rt, ok = h.RouteOverride(&po)
		pkt = po
	}
	if !ok {
		rt, ok = h.routes.Lookup(pkt.Dst)
	}
	if !ok {
		h.Stats.DropNoRoute++
		h.metrics.Drop(metrics.DropNoRoute)
		var detail string
		if h.sim.Trace.Detailing() {
			detail = dstDetail(pkt.Dst)
		}
		h.sim.Trace.Record(netsim.Event{
			Kind: netsim.EventDropNoRoute, Time: h.sim.Now(), Where: h.name, PktID: pkt.TraceID,
			Detail: detail,
		})
		return fmt.Errorf("%s: no route to %s", h.name, pkt.Dst)
	}

	if rt.IsVirtual() {
		rt.Output(pkt)
		return nil
	}

	if pkt.Src.IsZero() {
		pkt.Src = rt.Iface.addr
	}
	nexthop := rt.NextHop
	if nexthop.IsZero() {
		nexthop = pkt.Dst
	}
	return h.transmit(rt.Iface, nexthop, pkt)
}

// transmit applies the egress filter, fragments to the interface MTU, and
// resolves the link-layer destination.
func (h *Host) transmit(ifc *Iface, nexthop ipv4.Addr, pkt ipv4.Packet) error {
	if h.Filter != nil && !h.Filter.checkEgress(ifc, &pkt) {
		h.traceFilterDrop("egress", ifc, &pkt)
		return fmt.Errorf("%s: egress filter dropped packet src=%s", h.name, pkt.Src)
	}
	mtu := ifc.nic.MTU()
	if pkt.TotalLen() <= mtu {
		// Steady-state fast path: the packet fits, so skip Fragment's
		// single-element slice allocation.
		ifc.resolveAndSend(nexthop, pkt)
		return nil
	}
	frags, err := ipv4.Fragment(pkt, mtu)
	if err != nil {
		if err == ipv4.ErrFragNeeded {
			h.Stats.DropFragSet++
			h.metrics.Drop(metrics.DropFragNeeded)
			if h.FragNeeded != nil {
				h.FragNeeded(ifc, pkt, mtu)
			}
		} else {
			h.Stats.DropMalformed++
			h.metrics.Drop(metrics.DropMalformed)
		}
		return err
	}
	if len(frags) > 1 {
		h.Stats.FragsCreated += uint64(len(frags))
	}
	for _, f := range frags {
		ifc.resolveAndSend(nexthop, f)
	}
	return nil
}

// SendIPLinkDirect transmits pkt out of ifc with the link-layer
// destination resolved for linkDst rather than for the packet's IP
// destination. This is the In-DH mechanism of Section 5: "the only
// difference is in the link-layer destination to which the packet is
// addressed" — a correspondent host sends an ordinary packet addressed to
// the mobile host's home address, but link-delivers it to the mobile
// host's interface on the shared segment.
func (h *Host) SendIPLinkDirect(ifc *Iface, linkDst ipv4.Addr, pkt ipv4.Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = ipv4.DefaultTTL
	}
	if pkt.ID == 0 {
		pkt.ID = h.NextIPID()
	}
	if pkt.TraceID == 0 {
		pkt.TraceID = h.sim.Trace.NextPacketID()
	}
	if pkt.Src.IsZero() {
		pkt.Src = ifc.addr
	}
	h.Stats.IPSent++
	h.metrics.IPSent.Inc()
	var detail string
	if h.sim.Trace.Detailing() {
		detail = linkDirectDetail(pkt.Src, pkt.Dst, pkt.Protocol, linkDst)
	}
	h.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventSend, Time: h.sim.Now(), Where: h.name, PktID: pkt.TraceID,
		Detail: detail,
	})
	return h.transmit(ifc, linkDst, pkt)
}

// InjectLocal delivers a packet to this host's own protocol handlers as
// if it had arrived addressed to us — the decapsulation path for tunneled
// multicast uses it (the inner destination is a group, not one of our
// addresses). Delivery is posted through the scheduler.
func (h *Host) InjectLocal(pkt ipv4.Packet) {
	h.postLocal(pkt)
}

// receiveFrame is the NIC receive callback.
func (ifc *Iface) receiveFrame(n *netsim.NIC, f netsim.Frame) {
	h := ifc.host
	switch f.Type {
	case netsim.EtherTypeARP:
		ifc.receiveARP(f)
	case netsim.EtherTypeIPv4:
		pkt, err := ipv4.Unmarshal(f.Payload)
		if err != nil {
			h.Stats.DropMalformed++
			h.metrics.Drop(metrics.DropMalformed)
			return
		}
		pkt.TraceID = f.TraceID
		h.receiveIP(ifc, pkt)
	}
}

// receiveIP is the IP input path: ingress filter, local delivery or
// forwarding.
func (h *Host) receiveIP(ifc *Iface, pkt ipv4.Packet) {
	h.Stats.IPReceived++

	if h.Filter != nil && !h.Filter.checkIngress(ifc, &pkt) {
		h.traceFilterDrop("ingress", ifc, &pkt)
		return
	}

	local := h.Claimed(pkt.Dst) ||
		pkt.Dst.IsBroadcast() ||
		(ifc.prefix.Bits > 0 && pkt.Dst == ifc.prefix.BroadcastAddr()) ||
		(pkt.Dst.IsMulticast() && ifc.InGroup(pkt.Dst))

	// In-DH: a packet can be link-delivered to us even though its IP
	// destination is not one of our addresses (same-segment delivery to
	// our home address is the Claimed case above; but a correspondent
	// that is itself the target of such delivery needs nothing special).
	if local {
		h.deliverLocal(ifc, pkt)
		return
	}

	if pkt.Dst.IsMulticast() {
		// Not joined on this interface; multicast is never unicast-
		// forwarded here (inter-network multicast routing is out of
		// scope — see internal/stack/multicast.go).
		return
	}
	if !h.Forwarding {
		// Not ours, not forwarding: quietly drop (a host is not a router).
		return
	}
	h.forward(ifc, pkt)
}

func (h *Host) forward(in *Iface, pkt ipv4.Packet) {
	if pkt.TTL <= 1 {
		h.Stats.DropTTL++
		h.metrics.Drop(metrics.DropTTL)
		h.sim.Trace.Record(netsim.Event{
			Kind: netsim.EventDropTTL, Time: h.sim.Now(), Where: h.name, PktID: pkt.TraceID,
		})
		if h.TTLExceeded != nil {
			h.TTLExceeded(in, pkt)
		}
		return
	}
	pkt.TTL--

	rt, ok := h.routes.Lookup(pkt.Dst)
	if !ok {
		h.Stats.DropNoRoute++
		h.metrics.Drop(metrics.DropNoRoute)
		var detail string
		if h.sim.Trace.Detailing() {
			detail = dstDetail(pkt.Dst)
		}
		h.sim.Trace.Record(netsim.Event{
			Kind: netsim.EventDropNoRoute, Time: h.sim.Now(), Where: h.name, PktID: pkt.TraceID,
			Detail: detail,
		})
		return
	}
	if rt.IsVirtual() {
		rt.Output(pkt)
		return
	}
	nexthop := rt.NextHop
	if nexthop.IsZero() {
		nexthop = pkt.Dst
	}
	h.Stats.IPForwarded++
	h.metrics.IPForwarded.Inc()
	if pkt.Protocol == ipv4.ProtoIPIP || pkt.Protocol == ipv4.ProtoMinEnc || pkt.Protocol == ipv4.ProtoGRE {
		// A hop taken while still inside a tunnel: the indirect-route tax
		// the paper's overhead discussion is about.
		h.metrics.TunnelForwards.Inc()
	}
	var detail string
	if h.sim.Trace.Detailing() {
		detail = fwdDetail(pkt.Src, pkt.Dst, pkt.TTL)
	}
	h.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventForward, Time: h.sim.Now(), Where: h.name, PktID: pkt.TraceID,
		Detail: detail,
	})
	_ = h.transmit(rt.Iface, nexthop, pkt)
}

// deliverLocal reassembles and demultiplexes a packet destined for this
// host.
func (h *Host) deliverLocal(ifc *Iface, pkt ipv4.Packet) {
	full, done, err := h.reasm.Add(pkt)
	if err != nil {
		h.Stats.DropMalformed++
		h.metrics.Drop(metrics.DropMalformed)
		return
	}
	if !done {
		h.armReassemblyTimer()
		return
	}
	if full.MoreFrags || full.FragOffset != 0 {
		// Cannot happen: Add returns only whole packets. Defensive.
		h.Stats.DropMalformed++
		h.metrics.Drop(metrics.DropMalformed)
		return
	}
	if full.TraceID == 0 {
		full.TraceID = pkt.TraceID
	}
	if pkt.FragOffset != 0 || pkt.MoreFrags {
		h.Stats.Reassembled++
	}
	h.Stats.IPDelivered++
	h.metrics.IPDelivered.Inc()
	var detail string
	if h.sim.Trace.Detailing() {
		detail = pktDetail(full.Src, full.Dst, full.Protocol, full.TotalLen())
	}
	h.sim.Trace.Record(netsim.Event{
		Kind: netsim.EventDeliver, Time: h.sim.Now(), Where: h.name, PktID: full.TraceID,
		Detail: detail,
	})
	if h.DeliveryHook != nil {
		h.DeliveryHook(ifc, full)
	}

	if full.Dst.IsMulticast() && h.MulticastTap != nil && h.MulticastTap(ifc, full) {
		return // consumed by the tap (e.g. a home agent's group relay)
	}
	if override, ok := h.claimed[full.Dst]; ok && override != nil {
		override(ifc, full)
		return
	}
	if handler, ok := h.protoHandlers[full.Protocol]; ok {
		handler(ifc, full)
		return
	}
	h.Stats.DropNoProto++
	h.metrics.Drop(metrics.DropNoProto)
}

func (h *Host) armReassemblyTimer() {
	if h.reasmTimer.Pending() {
		return
	}
	if h.reasmTimer == nil {
		// First arm allocates the one Timer this host ever uses; later
		// arms reuse it via Reset.
		h.reasmTimer = h.sim.Sched.After(ReassemblyTimeout, func() {
			h.reasm.Expire()
		})
		return
	}
	h.reasmTimer.Reset(ReassemblyTimeout)
}
