package stack

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/udp"
)

// UDPHandler receives datagrams delivered to a socket.
type UDPHandler func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte)

// UDPSocket is a bound UDP port on a host. The bind address semantics
// follow Section 7.1.1 of the paper: a socket bound to a specific local
// address pins that address as the source of everything it sends (a
// mobile-aware application binding to the care-of address gets plain
// Out-DT delivery and bypasses Mobile IP); a socket bound to the zero
// address lets the routing code — including the mobility policy — choose.
type UDPSocket struct {
	host      *Host
	bindAddr  ipv4.Addr // zero = let routing choose
	port      uint16
	handler   UDPHandler
	closed    bool
	Delivered uint64
	Sent      uint64
}

// OpenUDP binds a UDP socket. port 0 allocates an ephemeral port.
// bindAddr zero means "any": received datagrams match by port alone, and
// sends let the routing code pick the source address.
func (h *Host) OpenUDP(bindAddr ipv4.Addr, port uint16, handler UDPHandler) (*UDPSocket, error) {
	if port == 0 {
		for {
			h.ephemeral++
			if h.ephemeral < 49152 {
				h.ephemeral = 49152
			}
			if _, used := h.udpSocks[h.ephemeral]; !used {
				port = h.ephemeral
				break
			}
		}
	}
	if _, used := h.udpSocks[port]; used {
		return nil, fmt.Errorf("%s: udp port %d already bound", h.name, port)
	}
	s := &UDPSocket{host: h, bindAddr: bindAddr, port: port, handler: handler}
	if h.udpSocks == nil {
		h.udpSocks = make(map[uint16]*UDPSocket)
	}
	h.udpSocks[port] = s
	h.ensureUDPDemux()
	return s, nil
}

// Port returns the bound port.
func (s *UDPSocket) Port() uint16 { return s.port }

// BindAddr returns the bound local address (zero for any).
func (s *UDPSocket) BindAddr() ipv4.Addr { return s.bindAddr }

// Rebind changes the socket's pinned local address (a mobile-aware
// application updating its preference after a move).
func (s *UDPSocket) Rebind(addr ipv4.Addr) { s.bindAddr = addr }

// Close releases the port.
func (s *UDPSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.host.udpSocks, s.port)
}

// SendTo transmits a datagram to dst:dstPort. The source address is the
// socket's bind address if set, otherwise zero (filled by routing).
func (s *UDPSocket) SendTo(dst ipv4.Addr, dstPort uint16, payload []byte) error {
	return s.sendFrom(s.bindAddr, dst, dstPort, payload)
}

// SendToFrom transmits a datagram with an explicit source address,
// overriding the bind address. The mobility code uses this to emit
// registration requests from the care-of address (Out-DT: "our Mobile IP
// support software itself communicates using the temporary address when
// registering with the home agent").
func (s *UDPSocket) SendToFrom(src, dst ipv4.Addr, dstPort uint16, payload []byte) error {
	return s.sendFrom(src, dst, dstPort, payload)
}

func (s *UDPSocket) sendFrom(src, dst ipv4.Addr, dstPort uint16, payload []byte) error {
	if s.closed {
		return fmt.Errorf("udp: socket closed")
	}
	d := udp.Datagram{SrcPort: s.port, DstPort: dstPort, Payload: payload}
	// The checksum covers the pseudo-header, so the final source address
	// must be known here. When the socket is unbound we resolve the
	// source the way the kernel does: ask routing which interface would
	// carry the packet. The mobility override participates via
	// SourceForDestination.
	// A zero source is legitimate for broadcasts: a host with no address
	// yet (DHCP DISCOVER) sends from 0.0.0.0.
	if src.IsZero() && !dst.IsBroadcast() {
		// Resolve with the transport context: the mobility policy's port
		// heuristic (§7.1.2) keys off the destination port, so an unbound
		// socket must present it or short-lived services could never be
		// elected onto the temporary address.
		src = s.host.SourceForDestinationPort(dst, ipv4.ProtoUDP, dstPort)
		if src.IsZero() {
			return fmt.Errorf("%s: no source address for %s", s.host.name, dst)
		}
	}
	// Marshal into a pooled scratch buffer: SendIP copies the payload
	// (into a pooled frame, a queued clone, or a local-delivery buffer)
	// before returning, so the scratch can be recycled immediately.
	buf := netsim.GetBuf()
	b, err := d.AppendMarshal(src, dst, buf.B)
	if err != nil {
		netsim.PutBuf(buf)
		return err
	}
	buf.B = b
	s.Sent++
	err = s.host.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: src, Dst: dst},
		Payload: b,
	})
	netsim.PutBuf(buf)
	return err
}

// SourceForDestination returns the source address the host would use for a
// packet to dst: the mobility override's choice if one is installed, else
// the address of the output interface. It mirrors the paper's observation
// that the source/encapsulation decision "must also be made when TCP
// decides what address to use as the endpoint identifier" — transports
// call this at connection setup.
func (h *Host) SourceForDestination(dst ipv4.Addr) ipv4.Addr {
	return h.SourceForDestinationPort(dst, 0, 0)
}

// SourceForDestinationPort is SourceForDestination with transport
// context. The route override may consult the destination port (the
// paper's §7.1.2 port heuristic elects the temporary address for
// short-lived services), so source resolution for an unbound socket
// must present the port the real packet will carry. proto 0 means "no
// transport context" and behaves exactly like SourceForDestination.
func (h *Host) SourceForDestinationPort(dst ipv4.Addr, proto uint8, dstPort uint16) ipv4.Addr {
	probe := ipv4.Packet{Header: ipv4.Header{Protocol: proto, Dst: dst}}
	if proto != 0 {
		// portProbe is a Host-owned scratch (hosts are single-goroutine,
		// like everything on a Sim): a stack [4]byte here would escape
		// through the probe pointer and cost an allocation per send.
		binary.BigEndian.PutUint16(h.portProbe[2:], dstPort)
		probe.Payload = h.portProbe[:]
	}
	if h.RouteOverride != nil {
		rt, ok := h.RouteOverride(&probe)
		// The override may pin a source address even when it falls
		// through to normal routing (the Out-DT and Out-DH cases).
		if !probe.Src.IsZero() {
			return probe.Src
		}
		if ok && rt.Iface != nil {
			return rt.Iface.addr
		}
	}
	if h.Claimed(dst) {
		return dst
	}
	if rt, ok := h.routes.Lookup(dst); ok && rt.Iface != nil {
		return rt.Iface.addr
	}
	return ipv4.Zero
}

// SourceForDestinationPlain is SourceForDestination ignoring any route
// override: the source address the plain route table implies. Mobility
// components use it to pick outer tunnel sources without recursing into
// their own policy.
func (h *Host) SourceForDestinationPlain(dst ipv4.Addr) ipv4.Addr {
	if h.Claimed(dst) {
		return dst
	}
	if rt, ok := h.routes.Lookup(dst); ok && rt.Iface != nil {
		return rt.Iface.addr
	}
	return ipv4.Zero
}

func (h *Host) ensureUDPDemux() {
	if _, ok := h.protoHandlers[ipv4.ProtoUDP]; ok {
		return
	}
	h.Handle(ipv4.ProtoUDP, func(ifc *Iface, pkt ipv4.Packet) {
		d, err := udp.Unmarshal(pkt.Src, pkt.Dst, pkt.Payload)
		if err != nil {
			h.Stats.DropMalformed++
			return
		}
		sock, ok := h.udpSocks[d.DstPort]
		if !ok {
			h.Stats.DropNoProto++
			return
		}
		// A socket bound to a specific address only accepts datagrams
		// addressed to it (broadcast excepted).
		if !sock.bindAddr.IsZero() && pkt.Dst != sock.bindAddr && !pkt.Dst.IsBroadcast() {
			h.Stats.DropNoProto++
			return
		}
		sock.Delivered++
		if sock.handler != nil {
			sock.handler(pkt.Src, d.SrcPort, pkt.Dst, d.Payload)
		}
	})
}
