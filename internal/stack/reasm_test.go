package stack

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// TestReassemblyTimeoutDiscardsPartial: lose one fragment and verify the
// receiver gives up after the reassembly timeout instead of keeping the
// context forever.
func TestReassemblyTimeoutDiscardsPartial(t *testing.T) {
	sim := netsim.NewSim(1)
	seg := sim.NewSegment("lan", netsim.SegmentOpts{MTU: 576})
	prefix := ipv4.MustParsePrefix("10.0.0.0/24")
	a := NewHost(sim, "a")
	a.AddIface("eth0", seg, prefix.Host(1), prefix)
	b := NewHost(sim, "b")
	b.AddIface("eth0", seg, prefix.Host(2), prefix)

	var delivered int
	b.Handle(99, func(_ *Iface, pkt ipv4.Packet) { delivered++ })

	// Build the fragments by hand and deliver all but one.
	pkt := ipv4.Packet{
		Header:  ipv4.Header{Protocol: 99, TTL: 64, ID: 7, Src: a.FirstAddr(), Dst: b.FirstAddr()},
		Payload: make([]byte, 2000),
	}
	frags, err := ipv4.Fragment(pkt, 576)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("only %d fragments", len(frags))
	}
	for i, f := range frags {
		if i == 1 {
			continue // lost
		}
		b.receiveIP(b.Ifaces()[0], f)
	}
	sim.Sched.Run() // fires the reassembly timeout

	if delivered != 0 {
		t.Error("incomplete packet delivered")
	}
	if b.reasm.Pending() != 0 {
		t.Errorf("reassembly context leaked: %d", b.reasm.Pending())
	}
	if b.reasm.Drops == 0 {
		t.Error("timeout drop not counted")
	}

	// The receiver still works for the next, complete, packet.
	pkt2 := pkt
	pkt2.ID = 8
	frags2, _ := ipv4.Fragment(pkt2, 576)
	for _, f := range frags2 {
		b.receiveIP(b.Ifaces()[0], f)
	}
	sim.Sched.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d after recovery", delivered)
	}
}

// TestFragmentsThroughLossySegmentEventuallyExpire exercises the same
// path end to end: heavy loss on a narrow segment leaves partial
// contexts, which must all be reaped.
func TestFragmentsThroughLossySegmentEventuallyExpire(t *testing.T) {
	sim := netsim.NewSim(3)
	seg := sim.NewSegment("lossy", netsim.SegmentOpts{MTU: 576, LossRate: 0.3})
	prefix := ipv4.MustParsePrefix("10.0.0.0/24")
	a := NewHost(sim, "a")
	a.AddIface("eth0", seg, prefix.Host(1), prefix)
	b := NewHost(sim, "b")
	b.AddIface("eth0", seg, prefix.Host(2), prefix)
	b.Handle(99, func(_ *Iface, pkt ipv4.Packet) {})

	for i := 0; i < 50; i++ {
		_ = a.SendIP(ipv4.Packet{
			Header:  ipv4.Header{Protocol: 99, Dst: b.FirstAddr()},
			Payload: make([]byte, 3000),
		})
	}
	sim.Sched.Run()
	if b.reasm.Pending() != 0 {
		t.Errorf("contexts leaked: %d", b.reasm.Pending())
	}
}
