package stack

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"mob4x4/internal/ipv4"
)

// Route is one routing table entry. Exactly one of two behaviors applies
// on selection:
//
//   - Output == nil: the packet leaves via Iface, link-addressed to NextHop
//     (or to the destination itself when NextHop is zero — an on-link
//     route).
//   - Output != nil: the packet is handed to Output, a virtual interface.
//     Package mobileip uses this for its encapsulating tunnel interface,
//     exactly as the paper describes ("the routine directs IP to send the
//     packet to our virtual interface, which encapsulates the packet and
//     resubmits it to IP").
type Route struct {
	Prefix  ipv4.Prefix
	NextHop ipv4.Addr // zero = on-link
	Iface   *Iface
	Output  func(pkt ipv4.Packet) // virtual interface hook
	Metric  int
	// Name labels virtual routes in debug output.
	Name string
}

// IsVirtual reports whether the route points at a virtual interface.
func (r Route) IsVirtual() bool { return r.Output != nil }

func (r Route) String() string {
	dev := "(none)"
	if r.Iface != nil {
		dev = r.Iface.nic.Name()
	}
	switch {
	case r.IsVirtual():
		return fmt.Sprintf("%s via virtual(%s) metric %d", r.Prefix, r.Name, r.Metric)
	case r.NextHop.IsZero():
		return fmt.Sprintf("%s dev %s metric %d", r.Prefix, dev, r.Metric)
	default:
		return fmt.Sprintf("%s via %s dev %s metric %d", r.Prefix, r.NextHop, dev, r.Metric)
	}
}

// RouteTable is a longest-prefix-match routing table with metric
// tie-breaking. Lookups scan a lazily-maintained view of the entries
// sorted most-specific-first (first containing prefix wins), fronted by a
// small per-destination cache; both are invalidated by a generation
// counter bumped on every mutation. This mirrors the paper's §7.1
// observation that the per-destination delivery-method decision is worth
// caching between route changes. The benchmark suite measures lookup cost
// explicitly (BenchmarkRouteLookup).
type RouteTable struct {
	routes []Route
	// Lookups counts queries (benchmark instrumentation).
	Lookups uint64

	gen       uint64 // bumped on every mutation
	sortedGen uint64 // generation the sorted view was built at
	sorted    []Route
	// cache is direct-mapped and lives inline in the struct: scenarios
	// build hundreds of tables, so a heap-allocated map per table was a
	// measurable share of experiment cost. Slots self-invalidate via
	// their generation stamp; nothing is cleared on mutation.
	cache [routeCacheSlots]cachedRoute
}

// cachedRoute is one cache slot, 16 bytes so the whole cache stays small
// enough to zero cheaply at table creation. It stores an index into the
// sorted view rather than the Route itself; sortIdx < 0 caches a negative
// lookup (hosts without a default route probe unroutable destinations
// repeatedly). A slot is valid when gen1 == table gen + 1 (zero means
// never filled), which also guarantees t.sorted is the view the index
// was computed against.
type cachedRoute struct {
	gen1    uint64
	dst     ipv4.Addr
	sortIdx int32
}

// routeCacheSlots sizes the direct-mapped per-destination cache (power of
// two); simulated traffic matrices touch far fewer destinations than this.
const routeCacheSlots = 64

// cacheIndex hashes a destination into the cache. Fibonacci hashing on
// the 4 address bytes spreads the sequential host parts topologies use.
func cacheIndex(dst ipv4.Addr) int {
	v := uint32(dst[0])<<24 | uint32(dst[1])<<16 | uint32(dst[2])<<8 | uint32(dst[3])
	return int((v * 0x9E3779B1) >> (32 - 6)) // 6 bits: routeCacheSlots == 64
}

// NewRouteTable returns an empty table.
func NewRouteTable() *RouteTable { return &RouteTable{} }

// Add inserts a route.
func (t *RouteTable) Add(r Route) {
	if t.routes == nil {
		// Preallocate: topologies install several routes per host right
		// after creation, and append-doubling from 1 was a measurable
		// share of scenario construction.
		t.routes = make([]Route, 0, 8)
	}
	t.routes = append(t.routes, r)
	t.gen++
}

// AddDefault installs a default route (0.0.0.0/0) via nexthop on ifc.
func (t *RouteTable) AddDefault(ifc *Iface, nexthop ipv4.Addr) {
	t.Add(Route{Prefix: ipv4.Prefix{}, NextHop: nexthop, Iface: ifc, Metric: 100})
}

// Remove deletes all routes exactly matching prefix.
func (t *RouteTable) Remove(prefix ipv4.Prefix) {
	out := t.routes[:0]
	for _, r := range t.routes {
		if r.Prefix != prefix {
			out = append(out, r)
		}
	}
	t.routes = out
	t.gen++
}

// RemoveConnected deletes the connected (on-link, metric-0) routes bound
// to the given interface.
func (t *RouteTable) RemoveConnected(ifc *Iface) {
	out := t.routes[:0]
	for _, r := range t.routes {
		if r.Iface == ifc && r.NextHop.IsZero() && !r.IsVirtual() && r.Metric == 0 {
			continue
		}
		out = append(out, r)
	}
	t.routes = out
	t.gen++
}

// RemoveVirtual deletes virtual routes with the given name.
func (t *RouteTable) RemoveVirtual(name string) {
	out := t.routes[:0]
	for _, r := range t.routes {
		if r.IsVirtual() && r.Name == name {
			continue
		}
		out = append(out, r)
	}
	t.routes = out
	t.gen++
}

// Clear removes every route.
func (t *RouteTable) Clear() {
	t.routes = nil
	t.gen++
}

// Len returns the number of routes.
func (t *RouteTable) Len() int { return len(t.routes) }

// Lookup returns the best route for dst: longest prefix wins, then lowest
// metric, then insertion order.
func (t *RouteTable) Lookup(dst ipv4.Addr) (Route, bool) {
	t.Lookups++
	slot := &t.cache[cacheIndex(dst)]
	if slot.gen1 == t.gen+1 && slot.dst == dst {
		if slot.sortIdx < 0 {
			return Route{}, false
		}
		return t.sorted[slot.sortIdx], true
	}
	if t.sortedGen != t.gen {
		t.rebuildSorted()
	}
	slot.gen1, slot.dst, slot.sortIdx = t.gen+1, dst, -1
	for i, r := range t.sorted {
		if r.Prefix.Contains(dst) {
			slot.sortIdx = int32(i)
			return r, true
		}
	}
	return Route{}, false
}

// rebuildSorted rebuilds the most-specific-first view. The sort is stable
// on (prefix length desc, metric asc), so the first containing entry is
// exactly the route the old linear scan selected (longest prefix, then
// lowest metric, then insertion order).
func (t *RouteTable) rebuildSorted() {
	t.sorted = append(t.sorted[:0], t.routes...)
	slices.SortStableFunc(t.sorted, func(a, b Route) int {
		if a.Prefix.Bits != b.Prefix.Bits {
			return cmp.Compare(b.Prefix.Bits, a.Prefix.Bits)
		}
		return cmp.Compare(a.Metric, b.Metric)
	})
	t.sortedGen = t.gen
}

// Dump renders the table for debugging, most-specific first.
func (t *RouteTable) Dump() string {
	rs := append([]Route(nil), t.routes...)
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Prefix.Bits != rs[j].Prefix.Bits {
			return rs[i].Prefix.Bits > rs[j].Prefix.Bits
		}
		return rs[i].Metric < rs[j].Metric
	})
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintln(&sb, r)
	}
	return sb.String()
}
