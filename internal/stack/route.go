package stack

import (
	"fmt"
	"sort"
	"strings"

	"mob4x4/internal/ipv4"
)

// Route is one routing table entry. Exactly one of two behaviors applies
// on selection:
//
//   - Output == nil: the packet leaves via Iface, link-addressed to NextHop
//     (or to the destination itself when NextHop is zero — an on-link
//     route).
//   - Output != nil: the packet is handed to Output, a virtual interface.
//     Package mobileip uses this for its encapsulating tunnel interface,
//     exactly as the paper describes ("the routine directs IP to send the
//     packet to our virtual interface, which encapsulates the packet and
//     resubmits it to IP").
type Route struct {
	Prefix  ipv4.Prefix
	NextHop ipv4.Addr // zero = on-link
	Iface   *Iface
	Output  func(pkt ipv4.Packet) // virtual interface hook
	Metric  int
	// Name labels virtual routes in debug output.
	Name string
}

// IsVirtual reports whether the route points at a virtual interface.
func (r Route) IsVirtual() bool { return r.Output != nil }

func (r Route) String() string {
	dev := "(none)"
	if r.Iface != nil {
		dev = r.Iface.nic.Name()
	}
	switch {
	case r.IsVirtual():
		return fmt.Sprintf("%s via virtual(%s) metric %d", r.Prefix, r.Name, r.Metric)
	case r.NextHop.IsZero():
		return fmt.Sprintf("%s dev %s metric %d", r.Prefix, dev, r.Metric)
	default:
		return fmt.Sprintf("%s via %s dev %s metric %d", r.Prefix, r.NextHop, dev, r.Metric)
	}
}

// RouteTable is a longest-prefix-match routing table with metric
// tie-breaking. Lookup cost is O(n) over entries; tables in the simulation
// are small and the benchmark suite measures this cost explicitly
// (BenchmarkRouteLookup).
type RouteTable struct {
	routes []Route
	// Lookups counts queries (benchmark instrumentation).
	Lookups uint64
}

// NewRouteTable returns an empty table.
func NewRouteTable() *RouteTable { return &RouteTable{} }

// Add inserts a route.
func (t *RouteTable) Add(r Route) {
	t.routes = append(t.routes, r)
}

// AddDefault installs a default route (0.0.0.0/0) via nexthop on ifc.
func (t *RouteTable) AddDefault(ifc *Iface, nexthop ipv4.Addr) {
	t.Add(Route{Prefix: ipv4.Prefix{}, NextHop: nexthop, Iface: ifc, Metric: 100})
}

// Remove deletes all routes exactly matching prefix.
func (t *RouteTable) Remove(prefix ipv4.Prefix) {
	out := t.routes[:0]
	for _, r := range t.routes {
		if r.Prefix != prefix {
			out = append(out, r)
		}
	}
	t.routes = out
}

// RemoveConnected deletes the connected (on-link, metric-0) routes bound
// to the given interface.
func (t *RouteTable) RemoveConnected(ifc *Iface) {
	out := t.routes[:0]
	for _, r := range t.routes {
		if r.Iface == ifc && r.NextHop.IsZero() && !r.IsVirtual() && r.Metric == 0 {
			continue
		}
		out = append(out, r)
	}
	t.routes = out
}

// RemoveVirtual deletes virtual routes with the given name.
func (t *RouteTable) RemoveVirtual(name string) {
	out := t.routes[:0]
	for _, r := range t.routes {
		if r.IsVirtual() && r.Name == name {
			continue
		}
		out = append(out, r)
	}
	t.routes = out
}

// Clear removes every route.
func (t *RouteTable) Clear() { t.routes = nil }

// Len returns the number of routes.
func (t *RouteTable) Len() int { return len(t.routes) }

// Lookup returns the best route for dst: longest prefix wins, then lowest
// metric, then insertion order.
func (t *RouteTable) Lookup(dst ipv4.Addr) (Route, bool) {
	t.Lookups++
	best := -1
	for i, r := range t.routes {
		if !r.Prefix.Contains(dst) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := t.routes[best]
		if r.Prefix.Bits > b.Prefix.Bits ||
			(r.Prefix.Bits == b.Prefix.Bits && r.Metric < b.Metric) {
			best = i
		}
	}
	if best < 0 {
		return Route{}, false
	}
	return t.routes[best], true
}

// Dump renders the table for debugging, most-specific first.
func (t *RouteTable) Dump() string {
	rs := append([]Route(nil), t.routes...)
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Prefix.Bits != rs[j].Prefix.Bits {
			return rs[i].Prefix.Bits > rs[j].Prefix.Bits
		}
		return rs[i].Metric < rs[j].Metric
	})
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintln(&sb, r)
	}
	return sb.String()
}
