package stack

import "mob4x4/internal/ipv4"

// Multicast support (RFC 1112 host requirements, link scope). The
// simulation models what Section 6.4 of the paper needs: a host can join
// a group through a specific interface, and group traffic is delivered on
// the segment without any router involvement. The paper's argument —
// "It would be better if the multicast application were able to join the
// multicast group through its real physical interface on the current
// local network, rather than through its virtual interface on its distant
// home network" — is about WHERE the join happens; inter-network
// multicast routing (DVMRP et al.) is out of scope.

// JoinGroup subscribes the host to a multicast group on the given
// interface. Packets addressed to the group arriving on that interface
// are delivered to the protocol handlers.
func (h *Host) JoinGroup(ifc *Iface, group ipv4.Addr) {
	if !group.IsMulticast() {
		return
	}
	if ifc.groups == nil {
		ifc.groups = make(map[ipv4.Addr]bool)
	}
	ifc.groups[group] = true
}

// LeaveGroup unsubscribes the interface from a group.
func (h *Host) LeaveGroup(ifc *Iface, group ipv4.Addr) {
	delete(ifc.groups, group)
}

// InGroup reports whether the interface has joined the group.
func (i *Iface) InGroup(group ipv4.Addr) bool { return i.groups[group] }

// SendMulticast transmits a packet to a multicast group out of a specific
// interface (multicast sends are interface-scoped, never routed here).
func (h *Host) SendMulticast(ifc *Iface, pkt ipv4.Packet) error {
	if !pkt.Dst.IsMulticast() {
		return h.SendIP(pkt)
	}
	if pkt.TTL == 0 {
		pkt.TTL = 1 // link scope by default
	}
	if pkt.ID == 0 {
		pkt.ID = h.NextIPID()
	}
	if pkt.TraceID == 0 {
		pkt.TraceID = h.sim.Trace.NextPacketID()
	}
	if pkt.Src.IsZero() {
		pkt.Src = ifc.addr
	}
	h.Stats.IPSent++
	return h.transmit(ifc, pkt.Dst, pkt)
}
