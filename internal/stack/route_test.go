package stack

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

func TestLookupLongestPrefixWins(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), Metric: 100, Name: "default"})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8"), Metric: 10, Name: "net10"})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.1.0.0/16"), Metric: 10, Name: "net10-1"})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.1.2.0/24"), Metric: 10, Name: "net10-1-2"})

	cases := map[string]string{
		"10.1.2.3": "net10-1-2",
		"10.1.9.9": "net10-1",
		"10.9.9.9": "net10",
		"11.0.0.1": "default",
	}
	for addr, want := range cases {
		r, ok := rt.Lookup(ipv4.MustParseAddr(addr))
		if !ok || r.Name != want {
			t.Errorf("Lookup(%s) = %q,%v, want %q", addr, r.Name, ok, want)
		}
	}
}

func TestLookupMetricTieBreak(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8"), Metric: 20, Name: "worse"})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8"), Metric: 5, Name: "better"})
	r, ok := rt.Lookup(ipv4.MustParseAddr("10.1.1.1"))
	if !ok || r.Name != "better" {
		t.Errorf("got %q", r.Name)
	}
}

func TestLookupInsertionOrderTieBreak(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8"), Metric: 5, Name: "first"})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8"), Metric: 5, Name: "second"})
	r, _ := rt.Lookup(ipv4.MustParseAddr("10.1.1.1"))
	if r.Name != "first" {
		t.Errorf("got %q, want first-inserted", r.Name)
	}
}

func TestLookupMiss(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.0.0.0/8")})
	if _, ok := rt.Lookup(ipv4.MustParseAddr("11.0.0.1")); ok {
		t.Error("miss reported as hit")
	}
	if rt.Lookups != 1 {
		t.Errorf("lookup counter = %d", rt.Lookups)
	}
}

func TestRemoveVariants(t *testing.T) {
	rt := NewRouteTable()
	p := ipv4.MustParsePrefix("10.0.0.0/8")
	rt.Add(Route{Prefix: p, Name: "a"})
	rt.Add(Route{Prefix: p, Name: "b"})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("11.0.0.0/8"), Name: "keep"})
	rt.Remove(p)
	if rt.Len() != 1 {
		t.Errorf("len = %d after Remove", rt.Len())
	}
	rt.Add(Route{Prefix: p, Output: func(ipv4.Packet) {}, Name: "virt"})
	rt.RemoveVirtual("virt")
	if rt.Len() != 1 {
		t.Errorf("len = %d after RemoveVirtual", rt.Len())
	}
	rt.Clear()
	if rt.Len() != 0 {
		t.Error("Clear incomplete")
	}
}

func TestDumpSortsBySpecificity(t *testing.T) {
	rt := NewRouteTable()
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), Metric: 100})
	rt.Add(Route{Prefix: ipv4.MustParsePrefix("10.1.2.0/24"), Metric: 10})
	dump := rt.Dump()
	if !strings.Contains(dump, "10.1.2.0/24") {
		t.Errorf("dump missing route:\n%s", dump)
	}
	if strings.Index(dump, "10.1.2.0/24") > strings.Index(dump, "0.0.0.0/0") {
		t.Error("dump not most-specific-first")
	}
}

func TestRouteString(t *testing.T) {
	virt := Route{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), Output: func(ipv4.Packet) {}, Name: "tun"}
	if !strings.Contains(virt.String(), "virtual(tun)") {
		t.Errorf("virtual route string: %s", virt)
	}
	if !virt.IsVirtual() {
		t.Error("IsVirtual false for virtual route")
	}
}

// TestLookupMatchesBruteForce is the route-table property test: for random
// tables and random addresses, Lookup agrees with a straightforward
// brute-force evaluation of the longest-prefix-match-then-metric rule.
func TestLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	brute := func(rt *RouteTable, dst ipv4.Addr) (Route, bool) {
		best := -1
		for i, r := range rt.routes {
			if !r.Prefix.Contains(dst) {
				continue
			}
			if best < 0 ||
				r.Prefix.Bits > rt.routes[best].Prefix.Bits ||
				(r.Prefix.Bits == rt.routes[best].Prefix.Bits && r.Metric < rt.routes[best].Metric) {
				best = i
			}
		}
		if best < 0 {
			return Route{}, false
		}
		return rt.routes[best], true
	}
	f := func(seedRoutes []uint32, dstU uint32) bool {
		rt := NewRouteTable()
		for i, v := range seedRoutes {
			if i >= 32 {
				break
			}
			bits := int(v % 33)
			rt.Add(Route{
				Prefix: ipv4.PrefixFrom(ipv4.AddrFromUint32(v*2654435761), bits),
				Metric: int(v % 7),
				Name:   string(rune('a' + i%26)),
			})
		}
		dst := ipv4.AddrFromUint32(dstU ^ rng.Uint32())
		got, okGot := rt.Lookup(dst)
		want, okWant := brute(rt, dst)
		if okGot != okWant {
			return false
		}
		if !okGot {
			return true
		}
		return got.Prefix == want.Prefix && got.Metric == want.Metric
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// BenchmarkRouteLookup is the DESIGN.md route-lookup ablation: cost of a
// lookup in a realistic-size table, with and without a mobility override
// layered in front.
func BenchmarkRouteLookup(b *testing.B) {
	rt := NewRouteTable()
	for i := 0; i < 32; i++ {
		rt.Add(Route{
			Prefix: ipv4.PrefixFrom(ipv4.AddrFromUint32(uint32(i)<<24), 8),
			Metric: i,
		})
	}
	dst := ipv4.MustParseAddr("17.5.0.2")
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt.Lookup(dst)
		}
	})
	b.Run("with-policy-override", func(b *testing.B) {
		// The paper's design: a policy consultation before the table.
		override := func(pkt *ipv4.Packet) (Route, bool) { return Route{}, false }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pkt := ipv4.Packet{Header: ipv4.Header{Dst: dst}}
			if _, ok := override(&pkt); !ok {
				rt.Lookup(dst)
			}
		}
	})
}
