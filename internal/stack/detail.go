package stack

import (
	"strconv"
	"sync"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// This file holds the allocation-light support for the stack's hot paths:
// manual trace-detail builders (byte-identical to the fmt.Sprintf strings
// they replaced, but built with strconv into stack buffers and only when
// the tracer is recording) and the pooled deferred-local-delivery job.

// pktDetail renders "src > dst proto=N len=N".
func pktDetail(src, dst ipv4.Addr, proto uint8, length int) string {
	var buf [64]byte
	b := src.AppendText(buf[:0])
	b = append(b, " > "...)
	b = dst.AppendText(b)
	b = append(b, " proto="...)
	b = strconv.AppendUint(b, uint64(proto), 10)
	b = append(b, " len="...)
	b = strconv.AppendInt(b, int64(length), 10)
	return string(b)
}

// linkDirectDetail renders "src > dst proto=N link-direct via A".
func linkDirectDetail(src, dst ipv4.Addr, proto uint8, via ipv4.Addr) string {
	var buf [96]byte
	b := src.AppendText(buf[:0])
	b = append(b, " > "...)
	b = dst.AppendText(b)
	b = append(b, " proto="...)
	b = strconv.AppendUint(b, uint64(proto), 10)
	b = append(b, " link-direct via "...)
	b = via.AppendText(b)
	return string(b)
}

// fwdDetail renders "src > dst ttl=N".
func fwdDetail(src, dst ipv4.Addr, ttl uint8) string {
	var buf [48]byte
	b := src.AppendText(buf[:0])
	b = append(b, " > "...)
	b = dst.AppendText(b)
	b = append(b, " ttl="...)
	b = strconv.AppendUint(b, uint64(ttl), 10)
	return string(b)
}

// dstDetail renders "dst=A".
func dstDetail(dst ipv4.Addr) string {
	var buf [24]byte
	b := append(buf[:0], "dst="...)
	b = dst.AppendText(b)
	return string(b)
}

// filterDetail renders "DIR filter on NIC: src=A dst=B".
func filterDetail(direction, nic string, src, dst ipv4.Addr) string {
	var buf [96]byte
	b := append(buf[:0], direction...)
	b = append(b, " filter on "...)
	b = append(b, nic...)
	b = append(b, ": src="...)
	b = src.AppendText(b)
	b = append(b, " dst="...)
	b = dst.AppendText(b)
	return string(b)
}

// localDelivery is a pooled deferred delivery: output() and InjectLocal
// post local deliveries through the scheduler so synchronous call chains
// cannot recurse (send → deliver → send → ...). The packet's payload and
// options may alias a pooled frame buffer that the link layer recycles as
// soon as the receive callback returns, while this job runs strictly
// later — so postLocal copies them into a pooled buffer the job owns.
type localDelivery struct {
	h   *Host
	pkt ipv4.Packet
	buf *netsim.Buf
}

//mob4x4vet:allow globalstate sync.Pool is concurrency-safe and delivery identity is unobservable; shards may share it
var localDeliveryPool = sync.Pool{New: func() any { return new(localDelivery) }}

// runLocalDelivery is the scheduler callback; a top-level func so
// scheduling it never allocates a closure.
func runLocalDelivery(a any) {
	d := a.(*localDelivery)
	h, pkt, buf := d.h, d.pkt, d.buf
	d.h, d.pkt, d.buf = nil, ipv4.Packet{}, nil
	localDeliveryPool.Put(d)
	h.deliverLocal(nil, pkt)
	// Protocol handlers follow the receive contract (copy anything they
	// retain), so the backing storage can be recycled now.
	netsim.PutBuf(buf)
}

func (h *Host) postLocal(pkt ipv4.Packet) {
	d := localDeliveryPool.Get().(*localDelivery)
	d.h = h
	// Copy the header by value with the borrowed slices detached, then
	// re-point Options/Payload at owned pooled storage. The stored packet
	// never aliases the caller's buffer, which dies when this call
	// returns.
	d.pkt = ipv4.Packet{Header: pkt.Header, TraceID: pkt.TraceID}
	d.pkt.Options = nil
	if len(pkt.Payload) > 0 || len(pkt.Options) > 0 {
		d.buf = netsim.GetBuf()
		b := append(d.buf.B, pkt.Options...)
		optEnd := len(b)
		b = append(b, pkt.Payload...)
		d.buf.B = b
		if optEnd > 0 {
			d.pkt.Options = b[:optEnd:optEnd]
		}
		d.pkt.Payload = b[optEnd:]
	}
	h.sim.Sched.AfterArg(0, runLocalDelivery, d)
}
