package stack

import (
	"mob4x4/internal/arp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

// resolveJob tracks packets queued while an address resolution is in
// flight on an interface.
type resolveJob struct {
	pkts    []ipv4.Packet
	retries int
	timer   *vtime.Timer
}

// resolveAndSend link-transmits pkt out of the interface, resolving
// nexthop to a MAC first. Broadcast and multicast destinations bypass ARP.
func (i *Iface) resolveAndSend(nexthop ipv4.Addr, pkt ipv4.Packet) {
	if nexthop.IsBroadcast() || (i.prefix.Bits > 0 && nexthop == i.prefix.BroadcastAddr()) || nexthop.IsMulticast() {
		i.sendIPFrame(netsim.BroadcastMAC, pkt)
		return
	}
	now := int64(i.host.sim.Now())
	if mac, ok := i.cache.Lookup(nexthop, now, int64(i.host.ARPCacheTTL)); ok {
		i.sendIPFrame(mac, pkt)
		return
	}
	job, inFlight := i.pending[nexthop]
	if !inFlight {
		job = &resolveJob{retries: i.host.ARPRetries}
		if i.pending == nil {
			i.pending = make(map[ipv4.Addr]*resolveJob)
		}
		i.pending[nexthop] = job
		i.sendARPRequest(nexthop)
		i.armARPTimer(nexthop, job)
	}
	// Bound the per-nexthop queue: an unresolvable nexthop fed by a fast
	// sender would otherwise pin copied payloads without limit until the
	// resolution times out. Real stacks keep just one packet; ours keeps
	// a small window and sheds the oldest.
	if limit := i.host.ARPQueueLimit; limit > 0 && len(job.pkts) >= limit {
		drop := len(job.pkts) - limit + 1
		i.host.Stats.DroppedARPExpired += uint64(drop)
		i.host.metrics.DropN(metrics.DropARPExpired, uint64(drop))
		copy(job.pkts, job.pkts[drop:])
		job.pkts = job.pkts[:len(job.pkts)-drop]
	}
	// The queued packet may alias a pooled frame buffer (forwarding path)
	// that is recycled when the receive callback returns, while the queue
	// waits for the ARP reply — take a private copy.
	//mob4x4vet:allow hotpathalloc ARP-miss queueing must retain the packet
	job.pkts = append(job.pkts, pkt.Clone())
}

func (i *Iface) armARPTimer(target ipv4.Addr, job *resolveJob) {
	job.timer = i.host.sim.Sched.After(i.host.ARPTimeout, func() {
		cur, ok := i.pending[target]
		if !ok || cur != job {
			return
		}
		job.retries--
		if job.retries > 0 {
			i.sendARPRequest(target)
			job.timer.Reset(i.host.ARPTimeout)
			return
		}
		delete(i.pending, target)
		i.host.Stats.DropNoARP += uint64(len(job.pkts))
		i.host.Stats.DroppedARPExpired += uint64(len(job.pkts))
		i.host.metrics.DropN(metrics.DropNoARP, uint64(len(job.pkts)))
		for _, p := range job.pkts {
			i.host.sim.Trace.Record(netsim.Event{
				Kind: netsim.EventDropNoRoute, Time: i.host.sim.Now(),
				Where: i.host.name, PktID: p.TraceID,
				Detail: "ARP resolution failed for " + target.String(),
			})
		}
	})
}

func (i *Iface) sendARPRequest(target ipv4.Addr) {
	msg := arp.Message{
		Op:        arp.OpRequest,
		SenderMAC: i.nic.MAC(),
		SenderIP:  i.addr,
		TargetIP:  target,
	}
	i.sendARPFrame(netsim.BroadcastMAC, &msg)
}

// sendARPFrame marshals msg into a pooled buffer and transmits it; the
// link layer recycles the buffer after delivery.
func (i *Iface) sendARPFrame(dst netsim.MAC, msg *arp.Message) {
	buf := netsim.GetBuf()
	buf.B = msg.AppendMarshal(buf.B)
	i.nic.Send(netsim.Frame{
		Dst:     dst,
		Type:    netsim.EtherTypeARP,
		Payload: buf.B,
		Buf:     buf,
	})
}

// GratuitousARP broadcasts a gratuitous request for addr from this
// interface, updating neighbours' caches. A home agent issues this when it
// starts (or stops) proxying for a mobile host, and a returning mobile
// host issues it to reclaim its address ([RFC1027]).
func (i *Iface) GratuitousARP(addr ipv4.Addr) {
	msg := arp.GratuitousRequest(i.nic.MAC(), addr)
	i.sendARPFrame(netsim.BroadcastMAC, &msg)
}

func (i *Iface) receiveARP(f netsim.Frame) {
	msg, err := arp.Unmarshal(f.Payload)
	if err != nil {
		return
	}
	now := int64(i.host.sim.Now())
	// Learn (or refresh) the sender's mapping unless it is a conflicting
	// claim for our own address.
	if !msg.SenderIP.IsZero() && msg.SenderIP != i.addr {
		i.cache.Learn(msg.SenderIP, msg.SenderMAC, now)
		i.drainPending(msg.SenderIP, msg.SenderMAC)
	}
	if msg.Op != arp.OpRequest {
		return
	}
	// Answer for our own address or any proxied address.
	answer := msg.TargetIP == i.addr && !i.addr.IsZero()
	if !answer && i.proxy.Contains(msg.TargetIP) {
		answer = true
	}
	// Never answer a gratuitous announcement (sender==target): that is a
	// cache update, not a question.
	if msg.SenderIP == msg.TargetIP {
		answer = false
	}
	if !answer {
		return
	}
	reply := arp.Message{
		Op:        arp.OpReply,
		SenderMAC: i.nic.MAC(),
		SenderIP:  msg.TargetIP, // proxy replies claim the proxied address
		TargetMAC: msg.SenderMAC,
		TargetIP:  msg.SenderIP,
	}
	i.sendARPFrame(msg.SenderMAC, &reply)
}

func (i *Iface) drainPending(ip ipv4.Addr, mac netsim.MAC) {
	job, ok := i.pending[ip]
	if !ok {
		return
	}
	delete(i.pending, ip)
	job.timer.Stop()
	for _, pkt := range job.pkts {
		i.sendIPFrame(mac, pkt)
	}
}

func (i *Iface) sendIPFrame(dst netsim.MAC, pkt ipv4.Packet) {
	buf := netsim.GetBuf()
	b, err := pkt.AppendMarshal(buf.B)
	if err != nil {
		netsim.PutBuf(buf)
		i.host.Stats.DropMalformed++
		return
	}
	buf.B = b
	i.nic.Send(netsim.Frame{
		Dst:     dst,
		Type:    netsim.EtherTypeIPv4,
		Payload: b,
		TraceID: pkt.TraceID,
		Buf:     buf,
	})
}
