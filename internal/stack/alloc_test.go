package stack

import (
	"testing"

	"mob4x4/internal/ipv4"

	"mob4x4/internal/race"
)

// TestForwardingSteadyStateZeroAllocs pins the full router datapath —
// marshal into a pooled frame, segment delivery, header parse, route-cache
// hit, TTL rewrite, re-marshal, final delivery — at zero allocations per
// packet once pools, caches and the scheduler are warm. This is the
// tentpole property of the zero-allocation fast path: steady-state
// forwarding cost is bounded by copying, not by the garbage collector.
func TestForwardingSteadyStateZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	sim, a, _, dst := threeNets(t)
	sim.Trace.Discard()
	delivered := 0
	dst.Handle(99, func(_ *Iface, pkt ipv4.Packet) { delivered++ })
	payload := make([]byte, 1400)
	pkt := ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: dst.FirstAddr()}, Payload: payload}

	// Warm ARP caches, route caches, pools and the timer store.
	for i := 0; i < 64; i++ {
		_ = a.SendIP(pkt)
	}
	sim.Sched.Run()
	if delivered == 0 {
		t.Fatal("warmup packets not delivered")
	}

	allocs := testing.AllocsPerRun(200, func() {
		_ = a.SendIP(pkt)
		sim.Sched.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state forwarding allocated %.1f times per run, want 0", allocs)
	}
}
