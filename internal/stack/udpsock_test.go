package stack

import (
	"bytes"
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

type udpRecv struct {
	src     ipv4.Addr
	srcPort uint16
	dst     ipv4.Addr
	payload []byte
}

func openRecorder(t testing.TB, h *Host, bind ipv4.Addr, port uint16) (*UDPSocket, *[]udpRecv) {
	t.Helper()
	var got []udpRecv
	s, err := h.OpenUDP(bind, port, func(src ipv4.Addr, sp uint16, dst ipv4.Addr, p []byte) {
		got = append(got, udpRecv{src, sp, dst, append([]byte(nil), p...)})
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, &got
}

func TestUDPSendReceive(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{Latency: 1e6})
	_, got := openRecorder(t, b, ipv4.Zero, 7)
	sa, _ := openRecorder(t, a, ipv4.Zero, 0)

	if err := sa.SendTo(b.FirstAddr(), 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d", len(*got))
	}
	r := (*got)[0]
	if r.src != a.FirstAddr() || r.srcPort != sa.Port() || !bytes.Equal(r.payload, []byte("hello")) {
		t.Errorf("got %+v", r)
	}
	if sa.Port() < 49152 {
		t.Errorf("ephemeral port %d out of range", sa.Port())
	}
}

func TestUDPPortCollision(t *testing.T) {
	_, a, _ := lanPair(t, netsim.SegmentOpts{})
	if _, err := a.OpenUDP(ipv4.Zero, 53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenUDP(ipv4.Zero, 53, nil); err == nil {
		t.Error("duplicate bind accepted")
	}
}

func TestUDPCloseReleasesPort(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	s, got := openRecorder(t, b, ipv4.Zero, 9)
	sa, _ := openRecorder(t, a, ipv4.Zero, 0)
	s.Close()
	s.Close() // double close is fine
	_ = sa.SendTo(b.FirstAddr(), 9, []byte("x"))
	sim.Sched.Run()
	if len(*got) != 0 {
		t.Error("closed socket received")
	}
	if err := s.SendTo(b.FirstAddr(), 9, nil); err == nil {
		t.Error("send on closed socket accepted")
	}
	if _, err := b.OpenUDP(ipv4.Zero, 9, nil); err != nil {
		t.Errorf("port not released: %v", err)
	}
}

func TestUDPBindAddrFiltersDeliveries(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	other := ipv4.MustParseAddr("36.1.1.3")
	b.Claim(other, nil)
	// Socket bound specifically to the claimed (home-like) address.
	_, got := openRecorder(t, b, other, 7)
	sa, _ := openRecorder(t, a, ipv4.Zero, 0)

	// To the bound address: delivered.
	_ = sa.SendTo(other, 7, []byte("yes")) // no route: on-link? other not in prefix...
	// other is off-prefix: use link-direct.
	sim.Sched.Run()
	d := udpPayload(t, a, sa, other, 7, []byte("yes"))
	_ = a.SendIPLinkDirect(a.Ifaces()[0], b.FirstAddr(), d)
	// To b's interface address: same port, but bind filters it out.
	d2 := udpPayload(t, a, sa, b.FirstAddr(), 7, []byte("no"))
	_ = a.SendIPLinkDirect(a.Ifaces()[0], b.FirstAddr(), d2)
	sim.Sched.Run()

	if len(*got) != 1 || !bytes.Equal((*got)[0].payload, []byte("yes")) {
		t.Errorf("bind filter wrong: %+v", *got)
	}
}

// udpPayload hand-builds a UDP packet from sock's port to dst:dport.
func udpPayload(t testing.TB, a *Host, sock *UDPSocket, dst ipv4.Addr, dport uint16, body []byte) ipv4.Packet {
	t.Helper()
	d := struct {
		SrcPort, DstPort uint16
		Payload          []byte
	}{sock.Port(), dport, body}
	// Reuse the udp codec through the socket API instead: simpler to
	// marshal directly here.
	b := make([]byte, 8+len(body))
	b[0], b[1] = byte(d.SrcPort>>8), byte(d.SrcPort)
	b[2], b[3] = byte(d.DstPort>>8), byte(d.DstPort)
	b[4], b[5] = byte((8+len(body))>>8), byte(8+len(body))
	copy(b[8:], body)
	// Zero checksum (allowed).
	return ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: a.FirstAddr(), Dst: dst},
		Payload: b,
	}
}

func TestUDPRebind(t *testing.T) {
	_, _, b := lanPair(t, netsim.SegmentOpts{})
	s, _ := openRecorder(t, b, ipv4.Zero, 7)
	if s.BindAddr() != ipv4.Zero {
		t.Error("initial bind addr")
	}
	s.Rebind(b.FirstAddr())
	if s.BindAddr() != b.FirstAddr() {
		t.Error("rebind failed")
	}
}

func TestSourceForDestination(t *testing.T) {
	_, a, b := lanPair(t, netsim.SegmentOpts{})
	if got := a.SourceForDestination(b.FirstAddr()); got != a.FirstAddr() {
		t.Errorf("on-link source = %s", got)
	}
	if got := a.SourceForDestination(ipv4.MustParseAddr("192.168.9.9")); !got.IsZero() {
		t.Errorf("unroutable destination yielded source %s", got)
	}
	// Claimed destination: talk to ourselves.
	claimed := ipv4.MustParseAddr("36.1.1.3")
	a.Claim(claimed, nil)
	if got := a.SourceForDestination(claimed); got != claimed {
		t.Errorf("claimed dest source = %s", got)
	}
}

func TestSourceForDestinationHonorsOverridePinnedSource(t *testing.T) {
	_, a, b := lanPair(t, netsim.SegmentOpts{})
	pinned := ipv4.MustParseAddr("36.1.1.3")
	a.RouteOverride = func(pkt *ipv4.Packet) (Route, bool) {
		pkt.Src = pinned
		return Route{}, false // fall through to the table
	}
	if got := a.SourceForDestination(b.FirstAddr()); got != pinned {
		t.Errorf("override-pinned source ignored: %s", got)
	}
}

func TestUDPSendNoSourceFails(t *testing.T) {
	_, a, _ := lanPair(t, netsim.SegmentOpts{})
	s, _ := openRecorder(t, a, ipv4.Zero, 0)
	if err := s.SendTo(ipv4.MustParseAddr("192.168.9.9"), 7, nil); err == nil {
		t.Error("send without resolvable source accepted")
	}
}

func TestUDPBroadcastZeroSource(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	_, got := openRecorder(t, b, ipv4.Zero, 67)
	sa, _ := openRecorder(t, a, ipv4.Zero, 68)
	// DHCP-style: zero source, broadcast destination.
	if err := sa.SendToFrom(ipv4.Zero, ipv4.Broadcast, 67, []byte("discover")); err != nil {
		t.Fatal(err)
	}
	sim.Sched.Run()
	if len(*got) != 1 || (*got)[0].src != ipv4.Zero {
		t.Errorf("broadcast from zero source: %+v", *got)
	}
}

func TestUDPStats(t *testing.T) {
	sim, a, b := lanPair(t, netsim.SegmentOpts{})
	sb, _ := openRecorder(t, b, ipv4.Zero, 7)
	sa, _ := openRecorder(t, a, ipv4.Zero, 0)
	for i := 0; i < 3; i++ {
		_ = sa.SendTo(b.FirstAddr(), 7, []byte("x"))
	}
	sim.Sched.Run()
	if sa.Sent != 3 || sb.Delivered != 3 {
		t.Errorf("sent=%d delivered=%d", sa.Sent, sb.Delivered)
	}
}
