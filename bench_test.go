// Benchmarks regenerating every figure of the paper (see DESIGN.md's
// per-experiment index). Each benchmark runs the corresponding experiment
// end to end per iteration and exports the figure's headline numbers as
// custom metrics, so `go test -bench=. -benchmem` prints the reproduced
// results alongside the usual costs.
package mob4x4_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/experiments"
)

// BenchmarkFig1BasicMobileIP — E1: asymmetric routing, conventional CH.
func BenchmarkFig1BasicMobileIP(b *testing.B) {
	var reqHops, repHops int
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(int64(i + 1))
		if !r.Ping.Delivered {
			b.Fatal("ping not delivered")
		}
		reqHops, repHops = r.Ping.RequestHops, r.Ping.ReplyHops
	}
	b.ReportMetric(float64(reqHops), "in-hops")
	b.ReportMetric(float64(repHops), "out-hops")
}

// BenchmarkFig2SourceFiltering — E2: Out-DH dies at the boundary.
func BenchmarkFig2SourceFiltering(b *testing.B) {
	var dhDelivered, ieDelivered int
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(int64(i+1), true)
		for _, row := range r.Rows {
			switch row.Mode {
			case core.OutDH:
				dhDelivered = row.Delivered
			case core.OutIE:
				ieDelivered = row.Delivered
			}
		}
	}
	b.ReportMetric(float64(dhDelivered), "outdh-delivered/5")
	b.ReportMetric(float64(ieDelivered), "outie-delivered/5")
}

// BenchmarkFig3BidirTunnel — E3: bi-directional tunneling restores
// deliverability at the cost of path length.
func BenchmarkFig3BidirTunnel(b *testing.B) {
	var delivered int
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(int64(i+1), true)
		for _, row := range r.Rows {
			if row.Mode == core.OutIE {
				delivered = row.Delivered
			}
		}
	}
	b.ReportMetric(float64(delivered), "delivered/5")
}

// BenchmarkFig4TriangleRouting — E4: indirect-delivery penalty vs
// home-agent distance; the ratio at the far end of the sweep is the
// figure's point.
func BenchmarkFig4TriangleRouting(b *testing.B) {
	var nearRatio, farRatio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig4(int64(i+1), []int{0, 8})
		nearRatio = float64(rows[0].InIERTT) / float64(rows[0].InDERTT)
		farRatio = float64(rows[1].InIERTT) / float64(rows[1].InDERTT)
	}
	b.ReportMetric(nearRatio, "rtt-ratio-d0")
	b.ReportMetric(farRatio, "rtt-ratio-d8")
}

// BenchmarkFig5SmartCH — E5: hops before and after care-of discovery.
func BenchmarkFig5SmartCH(b *testing.B) {
	var before, after int
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig5(int64(i + 1))
		before, after = r.Hops[0], r.Hops[len(r.Hops)-1]
	}
	b.ReportMetric(float64(before), "hops-before")
	b.ReportMetric(float64(after), "hops-after")
}

// BenchmarkFig10Grid — E8: the full matrix; agreement must be 16/16.
func BenchmarkFig10Grid(b *testing.B) {
	var agree int
	for i := 0; i < b.N; i++ {
		cells := experiments.RunGrid(int64(i + 1))
		agree, _, _ = experiments.GridAgreement(cells)
		if agree != 16 {
			b.Fatalf("grid agreement %d/16", agree)
		}
	}
	b.ReportMetric(float64(agree), "cells-agree/16")
}

// BenchmarkEncapOverhead — E9: bytes added per scheme and the
// fragmentation doubling at the MTU.
func BenchmarkEncapOverhead(b *testing.B) {
	var ipip, minenc, gre float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunOverhead([]int{1400}, 1500)
		for _, r := range rows {
			switch r.Codec {
			case "ipip":
				ipip = float64(r.OverheadBytes)
			case "minenc":
				minenc = float64(r.OverheadBytes)
			case "gre":
				gre = float64(r.OverheadBytes)
			}
		}
	}
	b.ReportMetric(ipip, "ipip-bytes")
	b.ReportMetric(minenc, "minenc-bytes")
	b.ReportMetric(gre, "gre-bytes")
}

// BenchmarkTunnelFragmentation — E9 end-to-end: backbone packet count
// with and without the tunnel for a just-under-MTU payload.
func BenchmarkTunnelFragmentation(b *testing.B) {
	var plain, tunneled float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTunnelFragmentation(int64(i+1), 1460)
		if !r.Delivered {
			b.Fatal("not delivered")
		}
		plain, tunneled = float64(r.PlainPackets), float64(r.TunnelPackets)
	}
	b.ReportMetric(plain, "plain-pkts")
	b.ReportMetric(tunneled, "tunnel-pkts")
}

// BenchmarkAdaptiveSelection — E10: wasted retransmissions per start
// strategy against a filtering home domain.
func BenchmarkAdaptiveSelection(b *testing.B) {
	var optRetrans, ruledRetrans float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAdaptive(int64(i+1), true)
		for _, r := range rows {
			switch r.Strategy {
			case "optimistic":
				optRetrans = float64(r.Retransmissions)
			case "ruled":
				ruledRetrans = float64(r.Retransmissions)
			}
		}
	}
	b.ReportMetric(optRetrans, "optimistic-retrans")
	b.ReportMetric(ruledRetrans, "ruled-retrans")
}

// BenchmarkDurability — E11: sessions surviving movement by endpoint
// choice.
func BenchmarkDurability(b *testing.B) {
	var homeOK, tempOK float64
	for i := 0; i < b.N; i++ {
		home := experiments.RunDurability(int64(i+1), true, 3)
		temp := experiments.RunDurability(int64(i+1), false, 3)
		homeOK, tempOK = bool01(home.Survived), bool01(temp.Survived)
	}
	b.ReportMetric(homeOK, "home-survived")
	b.ReportMetric(tempOK, "temp-survived")
}

// BenchmarkWebBrowse — Row D: Out-DT vs full Mobile IP for short fetches.
func BenchmarkWebBrowse(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		mip := experiments.RunWebBrowse(int64(i+1), 5, true)
		dt := experiments.RunWebBrowse(int64(i+1), 5, false)
		speedup = float64(mip.TotalTime) / float64(dt.TotalTime)
	}
	b.ReportMetric(speedup, "outdt-speedup")
}

// BenchmarkForeignAgent — attachment-style ablation.
func BenchmarkForeignAgent(b *testing.B) {
	var selfOK, faOK float64
	for i := 0; i < b.N; i++ {
		self := experiments.RunForeignAgent(int64(i+1), false)
		fa := experiments.RunForeignAgent(int64(i+1), true)
		selfOK = bool01(self.PingDelivered && self.OutDTAvailable)
		faOK = bool01(fa.PingDelivered && !fa.OutDTAvailable)
	}
	b.ReportMetric(selfOK, "self-sufficient-ok")
	b.ReportMetric(faOK, "fa-restricted-ok")
}

// BenchmarkMulticastModes — §6.4: router work per delivered group packet,
// local join vs home relay.
func BenchmarkMulticastModes(b *testing.B) {
	var localFwd, relayFwd float64
	for i := 0; i < b.N; i++ {
		local := experiments.RunMulticast(int64(i+1), true, 5)
		relay := experiments.RunMulticast(int64(i+1), false, 5)
		localFwd = float64(local.RouterForwards)
		relayFwd = float64(relay.RouterForwards)
	}
	b.ReportMetric(localFwd, "local-forwards")
	b.ReportMetric(relayFwd, "relay-forwards")
}

// BenchmarkDualMobile — §1: both endpoints mobile, survival check.
func BenchmarkDualMobile(b *testing.B) {
	var ok float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunDualMobile(int64(i + 1))
		ok = bool01(r.Survived)
		if !r.Established {
			b.Fatal("dual-mobile session failed to establish")
		}
	}
	b.ReportMetric(ok, "survived")
}

// BenchmarkPathAsymmetry — §2: one-way latency ratio between the two
// directions of a Figure-1 conversation over a slow home access link.
func BenchmarkPathAsymmetry(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAsymmetry(int64(i + 1))
		if !r.Delivered {
			b.Fatal("echo failed")
		}
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "oneway-ratio")
}

// BenchmarkSharedResourceLoad — §3.2: router work per conversation by
// correspondent capability.
func BenchmarkSharedResourceLoad(b *testing.B) {
	var conv, aware, near float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunSavings(int64(i + 1))
		conv = float64(rows[0].RouterForwards)
		aware = float64(rows[1].RouterForwards)
		near = float64(rows[2].RouterForwards)
	}
	b.ReportMetric(conv, "conventional-fwds")
	b.ReportMetric(aware, "aware-fwds")
	b.ReportMetric(near, "samesegment-fwds")
}

func bool01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
