package main

// determinismdiff is the runtime determinism gate (same binary as
// benchdiff, selected with -determinism): it builds ./cmd/mob4x4 once,
// runs every experiment twice per seed with identical arguments, and —
// for the experiments that fan trials out over worker goroutines — once
// more under -parallel N. The full stdout of each run (tables, metrics
// dumps, report JSON, chaos TSV series) is SHA-256 hashed; any pair of
// hashes that should match and does not is a determinism violation and
// the gate exits 1. This is the dynamic counterpart to the mapiter/
// globalstate/sharedrand/bufretain analyzers: the analyzers prove the
// sources of nondeterminism are absent, this proves the composed system
// actually emits byte-identical output per seed, worker count included.

import (
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// detExperiment is one experiment invocation under the gate. Args omit
// -seed and -parallel; the driver appends those.
type detExperiment struct {
	name string
	args []string
	// parallelOK marks experiments whose driver accepts -parallel
	// (independent trials fanned over workers); those also get a
	// parallel-vs-serial byte comparison.
	parallelOK bool
	// shardsOK marks experiments under the sharded-engine contract:
	// each run with -shards N must be byte-identical to serial for
	// every N (fleet drives region shards; chaos accepts and ignores
	// the flag, making the same promise trivially).
	shardsOK bool
}

// detExperiments is the full E-series surface. Every experiment that can
// dump metrics does, so the hash covers counters and histograms, not
// just the human tables. The chaos and fleet rows use small topologies:
// the gate is about byte-equality, not scale, and CI pays for every run
// three times.
var detExperiments = []detExperiment{
	{name: "fig1"},
	{name: "fig2"},
	{name: "fig3"},
	{name: "fig4"},
	{name: "fig5"},
	{name: "formats"},
	{name: "grid", args: []string{"-metrics-json"}, parallelOK: true},
	{name: "overhead", args: []string{"-metrics-json"}},
	{name: "adaptive", parallelOK: true},
	{name: "durability", parallelOK: true},
	{name: "webbrowse", parallelOK: true},
	{name: "fa", args: []string{"-metrics-json"}},
	{name: "transitions"},
	{name: "multicast"},
	{name: "trace"},
	// httpgrid's stdout includes each cell's capture SHA-256, so this row
	// compares the captured pcap bytes themselves — repeats, -parallel
	// and -shards (accepted and ignored: cells are single-region) must
	// all reproduce the same wire traffic, timestamps included, even
	// though real net/http goroutines drive the virtual clock.
	{name: "httpgrid", parallelOK: true, shardsOK: true},
	{name: "dualmobile"},
	{name: "asymmetry"},
	{name: "savings", args: []string{"-metrics-json"}},
	{name: "chaos", args: []string{"-trials", "2", "-metrics-json"}, parallelOK: true, shardsOK: true},
	{name: "fleet", args: []string{"-nodes", "60", "-cells", "6", "-trials", "2", "-metrics-json"}, parallelOK: true, shardsOK: true},
	{name: "adversary", args: []string{"-nodes", "60", "-cells", "6", "-trials", "2", "-metrics-json"}, parallelOK: true, shardsOK: true},
	{name: "routeopt", args: []string{"-nodes", "24", "-cells", "4", "-trials", "2", "-metrics-json"}, parallelOK: true, shardsOK: true},
	{name: "report"},
}

// runDeterminism executes the gate; it returns false on any divergence
// or run failure.
func runDeterminism(seedList string, parallel int, shardList string) bool {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinism:", err)
		return false
	}
	shardCounts, err := parseSeeds(shardList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinism: -determinism-shards:", err)
		return false
	}

	tmp, err := os.MkdirTemp("", "mob4x4-determinism-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinism:", err)
		return false
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "mob4x4")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mob4x4")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "determinism: build ./cmd/mob4x4:", err)
		return false
	}

	ok := true
	for _, e := range detExperiments {
		for _, seed := range seeds {
			serial := append([]string{"-seed", strconv.FormatInt(seed, 10)}, e.args...)
			serial = append(serial, e.name)
			h1, err := hashRun(bin, serial)
			if err != nil {
				fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d run 1: %v\n", e.name, seed, err)
				ok = false
				continue
			}
			h2, err := hashRun(bin, serial)
			if err != nil {
				fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d run 2: %v\n", e.name, seed, err)
				ok = false
				continue
			}
			if h1 != h2 {
				fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d: two identical serial runs diverged (%s != %s)\n",
					e.name, seed, h1[:12], h2[:12])
				ok = false
				continue
			}
			status := "run-to-run ok"
			if e.parallelOK && parallel > 1 {
				par := append([]string{"-seed", strconv.FormatInt(seed, 10), "-parallel", strconv.Itoa(parallel)}, e.args...)
				par = append(par, e.name)
				h3, err := hashRun(bin, par)
				if err != nil {
					fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d -parallel %d: %v\n", e.name, seed, parallel, err)
					ok = false
					continue
				}
				if h3 != h1 {
					fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d: -parallel %d output diverged from serial (%s != %s)\n",
						e.name, seed, parallel, h3[:12], h1[:12])
					ok = false
					continue
				}
				status = fmt.Sprintf("run-to-run and -parallel %d ok", parallel)
			}
			if e.shardsOK {
				diverged := false
				for _, n := range shardCounts {
					sh := append([]string{"-seed", strconv.FormatInt(seed, 10), "-shards", strconv.FormatInt(n, 10)}, e.args...)
					sh = append(sh, e.name)
					h4, err := hashRun(bin, sh)
					if err != nil {
						fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d -shards %d: %v\n", e.name, seed, n, err)
						ok, diverged = false, true
						break
					}
					if h4 != h1 {
						fmt.Fprintf(os.Stderr, "determinism: FAIL %s seed=%d: -shards %d output diverged from serial (%s != %s)\n",
							e.name, seed, n, h4[:12], h1[:12])
						ok, diverged = false, true
						break
					}
				}
				if diverged {
					continue
				}
				status += fmt.Sprintf(", -shards {%s} ok", shardList)
			}
			fmt.Printf("determinism: %-12s seed=%-3d %s (%s)\n", e.name, seed, h1[:12], status)
		}
	}
	return ok
}

// hashRun executes the experiment binary with args and returns the
// SHA-256 of its stdout. stderr passes through for diagnosis; a non-zero
// exit is an error (the invariant checkers inside chaos/fleet exit 1 on
// violations, which the gate must surface, not hash over).
func hashRun(bin string, args []string) (string, error) {
	cmd := exec.Command(bin, args...)
	h := sha256.New()
	cmd.Stdout = h
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func parseSeeds(list string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		s, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", list)
	}
	return seeds, nil
}
