package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// coverGate is the coverage floor (benchdiff's sibling gate, same
// binary): it reads a `go test -coverprofile` file, computes total
// statement coverage, prints a per-package breakdown, and reports
// whether the total clears the floor. Statement coverage is
// sum(statements in blocks hit at least once) / sum(all statements) —
// the same number `go tool cover -func` prints as "total:", computed
// here without shelling out. pkgFloors adds per-package minimums on top
// of the total floor, so a new package can be held to its own standard
// without the rest of the tree's surplus hiding a gap.
func coverGate(profile string, floor float64, pkgFloors map[string]float64) bool {
	f, err := os.Open(profile)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	type tally struct{ covered, total int64 }
	byPkg := map[string]*tally{}
	var all tally

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts hitCount
		fields := strings.Fields(line)
		if len(fields) != 3 {
			fatal(fmt.Errorf("%s: malformed coverage line %q", profile, line))
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("%s: bad statement count in %q", profile, line))
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("%s: bad hit count in %q", profile, line))
		}
		file := fields[0]
		if i := strings.IndexByte(file, ':'); i >= 0 {
			file = file[:i]
		}
		pkg := file
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			pkg = file[:i]
		}
		t := byPkg[pkg]
		if t == nil {
			t = &tally{}
			byPkg[pkg] = t
		}
		t.total += stmts
		all.total += stmts
		if count > 0 {
			t.covered += stmts
			all.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if all.total == 0 {
		fatal(fmt.Errorf("%s: no coverage blocks found", profile))
	}

	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	ok := true
	for _, p := range pkgs {
		t := byPkg[p]
		pkgPct := 100 * float64(t.covered) / float64(t.total)
		suffix := ""
		if pf, has := pkgFloors[p]; has {
			suffix = fmt.Sprintf(", floor %.1f%%", pf)
			if pkgPct < pf {
				suffix += "  FAIL"
				ok = false
			}
		}
		fmt.Printf("%-40s %6.1f%% (%d/%d statements)%s\n",
			p, pkgPct, t.covered, t.total, suffix)
	}
	for p := range pkgFloors {
		if byPkg[p] == nil {
			fmt.Printf("covergate: FAIL — package %s has a floor but no coverage blocks\n", p)
			ok = false
		}
	}
	pct := 100 * float64(all.covered) / float64(all.total)
	fmt.Printf("%-40s %6.1f%% (%d/%d statements), floor %.1f%%\n", "total:", pct, all.covered, all.total, floor)
	if pct < floor {
		fmt.Println("covergate: FAIL — total coverage under the floor")
		ok = false
	}
	if !ok {
		fmt.Println("covergate: FAIL")
	}
	return ok
}

// parsePkgFloors parses "pkg=NN,pkg=NN" into a floor map.
func parsePkgFloors(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		pkg, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found || pkg == "" {
			return nil, fmt.Errorf("bad -cover-pkg-floor entry %q (want pkg=percent)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -cover-pkg-floor percent in %q: %v", part, err)
		}
		out[pkg] = f
	}
	return out, nil
}
