// Command benchdiff converts `go test -bench` output to JSON and compares
// two such JSON files for performance regressions. It is the repo's
// benchmark gate (wired into `make bench` / `make benchgate` and CI):
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./scripts/benchdiff -parse > BENCH_2026-08-05.json
//	go run ./scripts/benchdiff BENCH_baseline.json BENCH_2026-08-05.json
//
// The comparison fails (exit 1) when a benchmark present in both files
// got more than -ns-tolerance slower in ns/op, or grew allocs/op beyond
// -allocs-tolerance: time is noisy, so it gets a generous band;
// allocation counts are deterministic for single-goroutine benchmarks
// but the fleet storms spawn worker goroutines whose runtime
// bookkeeping jitters counts by a few parts in ten thousand, so allocs
// get a tight relative band (0.1% by default) instead of exact
// equality — small counts (0, 2, 19 allocs/op) still gate exactly,
// since 0.1% of those rounds to nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one `go test -bench` result line. Metrics holds the
// b.ReportMetric custom units (the reproduced paper numbers).
type Benchmark struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the persisted BENCH_<date>.json shape.
type File struct {
	Date       string      `json:"date"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	parse := flag.Bool("parse", false, "read `go test -bench` text on stdin, write JSON on stdout")
	note := flag.String("note", "", "free-form note stored in the JSON (parse mode)")
	nsTol := flag.Float64("ns-tolerance", 0.25, "allowed fractional ns/op slowdown before failing (compare mode)")
	allocTol := flag.Float64("allocs-tolerance", 0.001, "allowed fractional allocs/op growth before failing (compare mode)")
	cover := flag.String("cover", "", "gate a `go test -coverprofile` file instead of benchmarks (cover mode)")
	coverFloor := flag.Float64("cover-floor", 0, "minimum total statement coverage percent (cover mode)")
	coverPkgFloors := flag.String("cover-pkg-floor", "", "comma-separated per-package floors, pkg=percent (cover mode)")
	determinism := flag.Bool("determinism", false, "run the runtime determinism gate over every experiment (see determinismdiff.go)")
	detSeeds := flag.String("determinism-seeds", "1,7", "comma-separated seeds for the determinism gate")
	detParallel := flag.Int("determinism-parallel", 4, "worker count for the parallel-vs-serial comparison (determinism mode)")
	detShards := flag.String("determinism-shards", "1,2,4", "comma-separated -shards values for the sharded-vs-serial comparison (determinism mode)")
	flag.Parse()

	if *determinism {
		if !runDeterminism(*detSeeds, *detParallel, *detShards) {
			os.Exit(1)
		}
		return
	}

	if *cover != "" {
		pkgFloors, err := parsePkgFloors(*coverPkgFloors)
		if err != nil {
			fatal(err)
		}
		if !coverGate(*cover, *coverFloor, pkgFloors) {
			os.Exit(1)
		}
		return
	}

	if *parse {
		f, err := parseBench(os.Stdin, *note)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(f); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -parse < bench.txt > out.json")
		fmt.Fprintln(os.Stderr, "       benchdiff [-ns-tolerance F] baseline.json current.json")
		os.Exit(2)
	}
	old, err := readFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := readFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if !compare(old, cur, *nsTol, *allocTol) {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func readFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// parseBench reads `go test -bench -benchmem` text. Benchmark names are
// qualified by the preceding "pkg:" line so same-named benchmarks in
// different packages (BenchmarkMarshal) stay distinct.
func parseBench(r *os.File, note string) (*File, error) {
	f := &File{Date: time.Now().UTC().Format("2006-01-02"), Note: note}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Benchmark{Pkg: pkg, Name: trimProcSuffix(fields[0]), Metrics: map[string]float64{}}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a header or a mangled line, not a result
		}
		b.Iterations = n
		// The rest is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				b.Metrics[unit] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return f, nil
}

// trimProcSuffix drops the -<GOMAXPROCS> tail go test appends so results
// compare across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func key(b Benchmark) string { return b.Pkg + "." + b.Name }

// compare prints a per-benchmark delta table and returns false when any
// shared benchmark regressed: ns/op beyond the time tolerance band, or
// allocs/op beyond the (much tighter) allocation band — which is zero
// slack for small counts. Benchmarks present in only one file are
// reported (sorted, so the summary is stable) but never gate: a new
// benchmark has no baseline to regress against, and a removed one is a
// baseline-refresh chore, not a perf fact.
func compare(old, cur *File, nsTol, allocTol float64) bool {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[key(b)] = b
	}
	var keys, newOnly []string
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		k := key(b)
		curBy[k] = b
		if _, shared := oldBy[k]; shared {
			keys = append(keys, k)
		} else {
			newOnly = append(newOnly, k)
		}
	}
	var oldOnly []string
	for k := range oldBy {
		if _, ok := curBy[k]; !ok {
			oldOnly = append(oldOnly, k)
		}
	}
	sort.Strings(keys)
	sort.Strings(newOnly)
	sort.Strings(oldOnly)
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common; nothing to gate")
		return false
	}

	ok := true
	fmt.Printf("%-55s %15s %15s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "allocs old→new")
	for _, k := range keys {
		o, c := oldBy[k], curBy[k]
		dNs := 0.0
		if o.NsPerOp > 0 {
			dNs = (c.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		verdict := ""
		if o.NsPerOp > 0 && dNs > nsTol {
			verdict = "  REGRESSION(ns/op)"
			ok = false
		}
		if c.AllocsPerOp > o.AllocsPerOp*(1+allocTol) {
			verdict += "  REGRESSION(allocs/op)"
			ok = false
		}
		fmt.Printf("%-55s %15.0f %15.0f %7.1f%% %6.0f → %-6.0f%s\n",
			k, o.NsPerOp, c.NsPerOp, dNs*100, o.AllocsPerOp, c.AllocsPerOp, verdict)
	}
	for _, k := range newOnly {
		c := curBy[k]
		fmt.Printf("%-55s %15s %15.0f %8s %6s → %-6.0f  new (no baseline; not gated)\n",
			k, "-", c.NsPerOp, "-", "-", c.AllocsPerOp)
	}
	for _, k := range oldOnly {
		o := oldBy[k]
		fmt.Printf("%-55s %15.0f %15s %8s %6.0f → %-6s  missing from current run (not gated)\n",
			k, o.NsPerOp, "-", "-", o.AllocsPerOp, "-")
	}
	if ok {
		fmt.Printf("benchdiff: %d benchmarks within tolerance (ns/op +%.0f%%, allocs/op +%.1f%%); %d new, %d missing\n",
			len(keys), nsTol*100, allocTol*100, len(newOnly), len(oldOnly))
	} else {
		fmt.Println("benchdiff: FAIL — regressions listed above")
	}
	return ok
}
