# The canonical local gate, mirrored by .github/workflows/ci.yml.
# `make check` is what CI runs (minus the fuzz smoke); run it before
# pushing.

GO ?= go

FUZZ_TIME ?= 10s
FUZZ_TARGETS = \
	./internal/ipv4:FuzzHeaderParse \
	./internal/encap:FuzzDecapsulateIPIP \
	./internal/encap:FuzzDecapsulateMinEnc \
	./internal/encap:FuzzDecapsulateGRE \
	./internal/encap:FuzzDecapsulateGREKeyed \
	./internal/encap:FuzzDecapsulateCompact \
	./internal/encap:FuzzDecapsulateCompactHome \
	./internal/encap:FuzzEncapRoundTrip \
	./internal/mobileip:FuzzAuthExtension \
	./internal/routeopt:FuzzParseUpdate \
	./internal/routeopt:FuzzParseAck

.PHONY: check build vet lint test race fuzz-smoke bench benchgate chaos-smoke fleet-smoke adversary-smoke facade-smoke routeopt-smoke cover determinism

check: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo-specific analyzer suite; see DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/mob4x4vet ./...

test:
	$(GO) test ./...

# Race matrix: the unit suite plus the chaos, fleet, and adversary
# smokes, all under the race detector. The smokes matter here because
# their drivers fan trials over -parallel workers — the only place
# distinct goroutines touch scheduler-adjacent state concurrently. CI
# runs the same legs (check/chaos-smoke/fleet-smoke/adversary-smoke).
race:
	$(GO) test -race ./...
	$(MAKE) chaos-smoke
	$(MAKE) fleet-smoke
	$(MAKE) adversary-smoke
	$(MAKE) facade-smoke
	$(MAKE) routeopt-smoke

# Run the full benchmark suite and record it as BENCH_<date>.json.
# Promote a run to the regression gate with:
#   cp BENCH_$$(date +%F).json BENCH_baseline.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee /tmp/mob4x4_bench.txt
	$(GO) run ./scripts -parse < /tmp/mob4x4_bench.txt > BENCH_$$(date +%F).json
	@echo "wrote BENCH_$$(date +%F).json"

# Fresh benchmark run gated against the committed baseline: fails on a
# >25% ns/op slowdown or a >0.1% allocs/op increase (zero slack for small
# counts; absorbs the fleet storms' goroutine-scheduling jitter — see
# scripts/benchdiff.go).
benchgate:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./scripts -parse > /tmp/mob4x4_bench_current.json
	$(GO) run ./scripts BENCH_baseline.json /tmp/mob4x4_bench_current.json

# Statement-coverage floor over the library packages (scripts/covergate.go
# computes the same total as `go tool cover -func`). The floor trails the
# measured baseline (90.9% at the time of writing) by a small buffer;
# raise it as coverage grows, never lower it to admit a regression.
COVER_FLOOR ?= 88.0
COVER_PKG_FLOORS ?= mob4x4/internal/fleet=90.0,mob4x4/internal/sock=90.0,mob4x4/internal/pcap=90.0,mob4x4/internal/routeopt=90.0
cover:
	$(GO) test -coverprofile=/tmp/mob4x4_cover.out ./internal/...
	$(GO) run ./scripts -cover /tmp/mob4x4_cover.out -cover-floor $(COVER_FLOOR) -cover-pkg-floor $(COVER_PKG_FLOORS)

# Seeded chaos soak under the race detector: fault injection +
# self-healing invariants, byte-determinism across runs and worker
# counts. Reproduce a CI failure locally with the seed it prints:
#   CHAOS_SEED=<n> make chaos-smoke
CHAOS_SEED ?= 1
chaos-smoke:
	@echo "chaos soak (CHAOS_SEED=$(CHAOS_SEED))"
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test ./internal/experiments -race -count=1 -run 'TestChaos'

# Seeded fleet handoff-storm smoke under the race detector: small fleet,
# full storm schedule, all invariants + the E14 determinism fixtures.
# Reproduce a CI failure locally with the seed it prints:
#   FLEET_SEED=<n> make fleet-smoke
FLEET_SEED ?= 1
fleet-smoke:
	@echo "fleet handoff storm (FLEET_SEED=$(FLEET_SEED))"
	FLEET_SEED=$(FLEET_SEED) $(GO) test ./internal/experiments -race -count=1 -run 'TestFleet'
	$(GO) test ./internal/fleet -race -count=1

# Seeded hijack-resistance smoke under the race detector: authenticated
# fleet vs the full adversarial storm (E15) plus its clean twin, all
# invariants checked. Reproduce a CI failure locally with the seed it
# prints:
#   ADV_SEED=<n> make adversary-smoke
ADV_SEED ?= 1
adversary-smoke:
	@echo "adversarial storm (ADV_SEED=$(ADV_SEED))"
	ADV_SEED=$(ADV_SEED) $(GO) test ./internal/experiments -race -count=1 -run 'TestAdversary'

# Seeded route-optimization smoke under the race detector: the E17
# six-way comparison (baseline / push / ha-push / compact / hier /
# fallback) plus the routeopt unit suite. Reproduce a CI failure locally
# with the seed it prints:
#   RO_SEED=<n> make routeopt-smoke
RO_SEED ?= 1
routeopt-smoke:
	@echo "route-optimization tier (RO_SEED=$(RO_SEED))"
	RO_SEED=$(RO_SEED) $(GO) test ./internal/experiments -race -count=1 -run 'TestRouteOpt'
	$(GO) test ./internal/routeopt -race -count=1

# Socket-facade smoke under the race detector: the stdlib-style conn
# conformance suite (TCP- and UDP-backed), net/http and DNS over the
# facade, and the E16 httpgrid capture-determinism assertions. These are
# the tests where real application goroutines drive the virtual clock.
facade-smoke:
	@echo "socket facade conformance + capture determinism"
	$(GO) test ./internal/sock -race -count=1
	$(GO) test ./internal/pcap -race -count=1
	$(GO) test ./internal/experiments -race -count=1 -run 'TestHTTPGrid|TestWriteCaptures'

# Runtime determinism gate (scripts/determinismdiff.go): build
# ./cmd/mob4x4 once, run every experiment twice per seed plus once under
# -parallel for the fan-out drivers and once per DET_SHARDS value for
# the sharded-engine experiments (chaos/fleet), SHA-256 each run's full
# stdout (tables, metrics dumps, report JSON, chaos series), fail on any
# divergence — including sharded-vs-serial.
# DET_SEEDS is capped at two seeds in CI on purpose: each extra seed
# re-runs the whole experiment surface three times over, and two seeds
# already exercise the seed-dependent branches (loss draws, storm
# phasing) — determinism bugs are order bugs, not seed bugs, so breadth
# buys little. Widen locally when hunting one:
#   make determinism DET_SEEDS=1,7,42,1996
DET_SEEDS ?= 1,7
DET_PARALLEL ?= 4
DET_SHARDS ?= 1,2,4
determinism:
	$(GO) run ./scripts -determinism -determinism-seeds $(DET_SEEDS) -determinism-parallel $(DET_PARALLEL) -determinism-shards $(DET_SHARDS)

# Short fuzz pass over every target; CI runs this on every push, longer
# runs are manual (`make fuzz-smoke FUZZ_TIME=5m`).
fuzz-smoke:
	@set -e; for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%%:*}; target=$${entry##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZ_TIME))"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZ_TIME); \
	done
